//! MIPS-I instruction model: decode, encode, and field extraction.
//!
//! SADC (paper §4) divides MIPS instructions into four streams — opcode,
//! register, 16-bit immediate and 26-bit jump target — and its decompressor
//! contains an *instruction generator* that reassembles a 32-bit word from
//! a simplified opcode plus operand bytes (paper Fig. 6).  This module is
//! that machinery: [`Instruction`] is a lossless structural decode of every
//! supported word, [`Operation`] is the simplified opcode with its
//! [`OperandSpec`] (the paper's *operand length unit*), and
//! [`Instruction::assemble`] is the instruction generator.

use std::error::Error;
use std::fmt;

/// A MIPS general-purpose register, `$0`–`$31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// `$zero` — hardwired zero.
    pub const ZERO: Reg = Reg(0);
    /// `$at` — assembler temporary.
    pub const AT: Reg = Reg(1);
    /// `$v0` — function result.
    pub const V0: Reg = Reg(2);
    /// `$v1` — function result.
    pub const V1: Reg = Reg(3);
    /// `$a0` — first argument.
    pub const A0: Reg = Reg(4);
    /// `$a1` — second argument.
    pub const A1: Reg = Reg(5);
    /// `$t0` — caller-saved temporary.
    pub const T0: Reg = Reg(8);
    /// `$s0` — callee-saved.
    pub const S0: Reg = Reg(16);
    /// `$gp` — global pointer.
    pub const GP: Reg = Reg(28);
    /// `$sp` — stack pointer.
    pub const SP: Reg = Reg(29);
    /// `$fp` — frame pointer.
    pub const FP: Reg = Reg(30);
    /// `$ra` — return address.
    pub const RA: Reg = Reg(31);

    /// Creates a register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `number > 31`.
    pub fn new(number: u8) -> Reg {
        assert!(number < 32, "register number {number} out of range");
        Reg(number)
    }

    /// The register number, `0..=31`.
    pub fn number(self) -> u8 {
        self.0
    }
}

impl Reg {
    /// The conventional ABI name (`$sp`, `$t0`, ...).
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3", "$t0", "$t1", "$t2", "$t3",
            "$t4", "$t5", "$t6", "$t7", "$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
            "$t8", "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
        ];
        NAMES[usize::from(self.0)]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// SPECIAL-opcode (R-format) operations, tagged with their funct code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
#[repr(u8)]
pub enum RType {
    Sll = 0x00,
    Srl = 0x02,
    Sra = 0x03,
    Sllv = 0x04,
    Srlv = 0x06,
    Srav = 0x07,
    Jr = 0x08,
    Jalr = 0x09,
    Syscall = 0x0C,
    Break = 0x0D,
    Mfhi = 0x10,
    Mthi = 0x11,
    Mflo = 0x12,
    Mtlo = 0x13,
    Mult = 0x18,
    Multu = 0x19,
    Div = 0x1A,
    Divu = 0x1B,
    Add = 0x20,
    Addu = 0x21,
    Sub = 0x22,
    Subu = 0x23,
    And = 0x24,
    Or = 0x25,
    Xor = 0x26,
    Nor = 0x27,
    Slt = 0x2A,
    Sltu = 0x2B,
}

/// Immediate-format operations, tagged with their primary opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
#[repr(u8)]
pub enum IType {
    Beq = 0x04,
    Bne = 0x05,
    Blez = 0x06,
    Bgtz = 0x07,
    Addi = 0x08,
    Addiu = 0x09,
    Slti = 0x0A,
    Sltiu = 0x0B,
    Andi = 0x0C,
    Ori = 0x0D,
    Xori = 0x0E,
    Lui = 0x0F,
    Lb = 0x20,
    Lh = 0x21,
    Lwl = 0x22,
    Lw = 0x23,
    Lbu = 0x24,
    Lhu = 0x25,
    Lwr = 0x26,
    Sb = 0x28,
    Sh = 0x29,
    Swl = 0x2A,
    Sw = 0x2B,
    Swr = 0x2E,
}

/// REGIMM branch operations (opcode 1, selected by the rt field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
#[repr(u8)]
pub enum RegImm {
    Bltz = 0x00,
    Bgez = 0x01,
}

/// Jump-format operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
#[repr(u8)]
pub enum JType {
    J = 0x02,
    Jal = 0x03,
}

/// A structurally decoded MIPS-I instruction.
///
/// Encoding and decoding are exact inverses over the supported subset; the
/// reserved fields the subset leaves implicit (e.g. shamt of non-shift
/// R-types) must be zero, which is what real assemblers emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// SPECIAL-opcode register format.
    R {
        /// Operation (funct field).
        op: RType,
        /// First source register.
        rs: Reg,
        /// Second source register.
        rt: Reg,
        /// Destination register.
        rd: Reg,
        /// Shift amount, `0..=31`.
        shamt: u8,
    },
    /// Immediate format.
    I {
        /// Operation (primary opcode).
        op: IType,
        /// Source register.
        rs: Reg,
        /// Target register (or second source for stores/branches).
        rt: Reg,
        /// 16-bit immediate (sign interpretation is per-op).
        imm: u16,
    },
    /// REGIMM conditional branch.
    B {
        /// Branch condition.
        op: RegImm,
        /// Register tested.
        rs: Reg,
        /// Branch offset.
        imm: u16,
    },
    /// Jump format.
    J {
        /// Operation.
        op: JType,
        /// 26-bit target field.
        target: u32,
    },
}

/// Error from [`Instruction::decode`]: the word is not in the supported
/// MIPS-I subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeInstructionError {
    /// The word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeInstructionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "word {:#010x} is not a supported MIPS-I instruction", self.word)
    }
}

impl Error for DecodeInstructionError {}

impl Instruction {
    /// `addiu rt, rs, imm` convenience constructor.
    pub fn addiu(rt: Reg, rs: Reg, imm: u16) -> Self {
        Instruction::I { op: IType::Addiu, rs, rt, imm }
    }

    /// `lw rt, imm(rs)` convenience constructor.
    pub fn lw(rt: Reg, imm: u16, rs: Reg) -> Self {
        Instruction::I { op: IType::Lw, rs, rt, imm }
    }

    /// `sw rt, imm(rs)` convenience constructor.
    pub fn sw(rt: Reg, imm: u16, rs: Reg) -> Self {
        Instruction::I { op: IType::Sw, rs, rt, imm }
    }

    /// `jr rs` convenience constructor.
    pub fn jr(rs: Reg) -> Self {
        Instruction::R { op: RType::Jr, rs, rt: Reg::ZERO, rd: Reg::ZERO, shamt: 0 }
    }

    /// `addu rd, rs, rt` convenience constructor.
    pub fn addu(rd: Reg, rs: Reg, rt: Reg) -> Self {
        Instruction::R { op: RType::Addu, rs, rt, rd, shamt: 0 }
    }

    /// The canonical `nop` (`sll $0, $0, 0`).
    pub fn nop() -> Self {
        Instruction::R { op: RType::Sll, rs: Reg::ZERO, rt: Reg::ZERO, rd: Reg::ZERO, shamt: 0 }
    }

    /// Encodes to the 32-bit machine word.
    pub fn encode(self) -> u32 {
        match self {
            Instruction::R { op, rs, rt, rd, shamt } => {
                debug_assert!(shamt < 32);
                u32::from(rs.0) << 21
                    | u32::from(rt.0) << 16
                    | u32::from(rd.0) << 11
                    | u32::from(shamt) << 6
                    | u32::from(op as u8)
            }
            Instruction::I { op, rs, rt, imm } => {
                u32::from(op as u8) << 26
                    | u32::from(rs.0) << 21
                    | u32::from(rt.0) << 16
                    | u32::from(imm)
            }
            Instruction::B { op, rs, imm } => {
                0x01 << 26 | u32::from(rs.0) << 21 | u32::from(op as u8) << 16 | u32::from(imm)
            }
            Instruction::J { op, target } => {
                debug_assert!(target < 1 << 26);
                u32::from(op as u8) << 26 | target
            }
        }
    }

    /// Decodes a 32-bit machine word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeInstructionError`] for opcodes or funct codes outside
    /// the supported MIPS-I subset.
    pub fn decode(word: u32) -> Result<Self, DecodeInstructionError> {
        let opcode = (word >> 26) as u8;
        let rs = Reg(((word >> 21) & 0x1F) as u8);
        let rt = Reg(((word >> 16) & 0x1F) as u8);
        let rd = Reg(((word >> 11) & 0x1F) as u8);
        let shamt = ((word >> 6) & 0x1F) as u8;
        let imm = (word & 0xFFFF) as u16;
        let err = DecodeInstructionError { word };

        match opcode {
            0x00 => {
                let funct = (word & 0x3F) as u8;
                let op = RType::from_funct(funct).ok_or(err)?;
                Ok(Instruction::R { op, rs, rt, rd, shamt })
            }
            0x01 => {
                let op = match rt.0 {
                    0x00 => RegImm::Bltz,
                    0x01 => RegImm::Bgez,
                    _ => return Err(err),
                };
                Ok(Instruction::B { op, rs, imm })
            }
            0x02 => Ok(Instruction::J { op: JType::J, target: word & 0x03FF_FFFF }),
            0x03 => Ok(Instruction::J { op: JType::Jal, target: word & 0x03FF_FFFF }),
            _ => {
                let op = IType::from_opcode(opcode).ok_or(err)?;
                Ok(Instruction::I { op, rs, rt, imm })
            }
        }
    }

    /// The simplified opcode — what SADC's opcode stream carries.
    pub fn operation(self) -> Operation {
        match self {
            Instruction::R { op, .. } => Operation::R(op),
            Instruction::I { op, .. } => Operation::I(op),
            Instruction::B { op, .. } => Operation::B(op),
            Instruction::J { op, .. } => Operation::J(op),
        }
    }

    /// Register-stream bytes in canonical field order (rs, rt, rd, shamt as
    /// applicable) — what SADC's register stream carries.
    pub fn register_fields(self) -> Vec<u8> {
        let spec = self.operation().operand_spec();
        let (rs, rt, rd, shamt) = match self {
            Instruction::R { rs, rt, rd, shamt, .. } => (rs.0, rt.0, rd.0, shamt),
            Instruction::I { rs, rt, .. } => (rs.0, rt.0, 0, 0),
            Instruction::B { rs, .. } => (rs.0, 0, 0, 0),
            Instruction::J { .. } => (0, 0, 0, 0),
        };
        let mut out = Vec::with_capacity(4);
        for field in spec.reg_fields {
            out.push(match field {
                RegField::Rs => rs,
                RegField::Rt => rt,
                RegField::Rd => rd,
                RegField::Shamt => shamt,
            });
        }
        out
    }

    /// The 16-bit immediate, if this operation carries one.
    pub fn imm16(self) -> Option<u16> {
        match self {
            Instruction::I { imm, .. } | Instruction::B { imm, .. } => Some(imm),
            _ => None,
        }
    }

    /// The 26-bit jump target, if this operation carries one.
    pub fn imm26(self) -> Option<u32> {
        match self {
            Instruction::J { target, .. } => Some(target),
            _ => None,
        }
    }

    /// The paper's *instruction generator*: reassembles an instruction from
    /// its simplified opcode and operand streams.
    ///
    /// `regs` must supply exactly the bytes [`Instruction::register_fields`]
    /// produced; `imm16`/`imm26` must be present exactly when the operation
    /// requires them.
    ///
    /// # Panics
    ///
    /// Panics if the operand pieces do not match `op`'s [`OperandSpec`] —
    /// the compressed streams are internally generated, so a mismatch is a
    /// codec bug, not an input error.
    pub fn assemble(op: Operation, regs: &[u8], imm16: Option<u16>, imm26: Option<u32>) -> Self {
        let spec = op.operand_spec();
        assert_eq!(regs.len(), spec.reg_fields.len(), "register stream mismatch for {op:?}");
        let mut rs = Reg::ZERO;
        let mut rt = Reg::ZERO;
        let mut rd = Reg::ZERO;
        let mut shamt = 0u8;
        for (field, &value) in spec.reg_fields.iter().zip(regs) {
            match field {
                RegField::Rs => rs = Reg::new(value),
                RegField::Rt => rt = Reg::new(value),
                RegField::Rd => rd = Reg::new(value),
                RegField::Shamt => shamt = value,
            }
        }
        match op {
            Operation::R(op) => Instruction::R { op, rs, rt, rd, shamt },
            Operation::I(op) => {
                Instruction::I { op, rs, rt, imm: imm16.expect("I-format requires imm16") }
            }
            Operation::B(op) => {
                Instruction::B { op, rs, imm: imm16.expect("branch requires imm16") }
            }
            Operation::J(op) => {
                Instruction::J { op, target: imm26.expect("J-format requires imm26") }
            }
        }
    }
}

impl RType {
    fn from_funct(funct: u8) -> Option<Self> {
        use RType::*;
        Some(match funct {
            0x00 => Sll,
            0x02 => Srl,
            0x03 => Sra,
            0x04 => Sllv,
            0x06 => Srlv,
            0x07 => Srav,
            0x08 => Jr,
            0x09 => Jalr,
            0x0C => Syscall,
            0x0D => Break,
            0x10 => Mfhi,
            0x11 => Mthi,
            0x12 => Mflo,
            0x13 => Mtlo,
            0x18 => Mult,
            0x19 => Multu,
            0x1A => Div,
            0x1B => Divu,
            0x20 => Add,
            0x21 => Addu,
            0x22 => Sub,
            0x23 => Subu,
            0x24 => And,
            0x25 => Or,
            0x26 => Xor,
            0x27 => Nor,
            0x2A => Slt,
            0x2B => Sltu,
            _ => return None,
        })
    }
}

impl IType {
    fn from_opcode(opcode: u8) -> Option<Self> {
        use IType::*;
        Some(match opcode {
            0x04 => Beq,
            0x05 => Bne,
            0x06 => Blez,
            0x07 => Bgtz,
            0x08 => Addi,
            0x09 => Addiu,
            0x0A => Slti,
            0x0B => Sltiu,
            0x0C => Andi,
            0x0D => Ori,
            0x0E => Xori,
            0x0F => Lui,
            0x20 => Lb,
            0x21 => Lh,
            0x22 => Lwl,
            0x23 => Lw,
            0x24 => Lbu,
            0x25 => Lhu,
            0x26 => Lwr,
            0x28 => Sb,
            0x29 => Sh,
            0x2A => Swl,
            0x2B => Sw,
            0x2E => Swr,
            _ => return None,
        })
    }
}

/// Which architectural field a register-stream byte populates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum RegField {
    Rs,
    Rt,
    Rd,
    Shamt,
}

/// What kind of immediate an operation carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImmKind {
    /// No immediate field.
    None,
    /// 16-bit immediate / branch offset.
    Imm16,
    /// 26-bit jump target.
    Imm26,
}

/// The paper's *operand length unit*: for a simplified opcode, which
/// register bytes and which immediate the decompressor must pull from the
/// operand streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperandSpec {
    /// Register-stream fields in order.
    pub reg_fields: &'static [RegField],
    /// Immediate-stream requirement.
    pub imm: ImmKind,
}

/// Flattened simplified opcode across all formats — the symbol SADC's
/// opcode stream and dictionary operate on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Operation {
    /// R-format operation.
    R(RType),
    /// I-format operation.
    I(IType),
    /// REGIMM branch.
    B(RegImm),
    /// J-format operation.
    J(JType),
}

impl Operation {
    /// Every supported operation, in stable id order.
    pub const ALL: [Operation; 56] = {
        use Operation as O;
        [
            O::R(RType::Sll),
            O::R(RType::Srl),
            O::R(RType::Sra),
            O::R(RType::Sllv),
            O::R(RType::Srlv),
            O::R(RType::Srav),
            O::R(RType::Jr),
            O::R(RType::Jalr),
            O::R(RType::Syscall),
            O::R(RType::Break),
            O::R(RType::Mfhi),
            O::R(RType::Mthi),
            O::R(RType::Mflo),
            O::R(RType::Mtlo),
            O::R(RType::Mult),
            O::R(RType::Multu),
            O::R(RType::Div),
            O::R(RType::Divu),
            O::R(RType::Add),
            O::R(RType::Addu),
            O::R(RType::Sub),
            O::R(RType::Subu),
            O::R(RType::And),
            O::R(RType::Or),
            O::R(RType::Xor),
            O::R(RType::Nor),
            O::R(RType::Slt),
            O::R(RType::Sltu),
            O::I(IType::Beq),
            O::I(IType::Bne),
            O::I(IType::Blez),
            O::I(IType::Bgtz),
            O::I(IType::Addi),
            O::I(IType::Addiu),
            O::I(IType::Slti),
            O::I(IType::Sltiu),
            O::I(IType::Andi),
            O::I(IType::Ori),
            O::I(IType::Xori),
            O::I(IType::Lui),
            O::I(IType::Lb),
            O::I(IType::Lh),
            O::I(IType::Lwl),
            O::I(IType::Lw),
            O::I(IType::Lbu),
            O::I(IType::Lhu),
            O::I(IType::Lwr),
            O::I(IType::Sb),
            O::I(IType::Sh),
            O::I(IType::Swl),
            O::I(IType::Sw),
            O::I(IType::Swr),
            O::B(RegImm::Bltz),
            O::B(RegImm::Bgez),
            O::J(JType::J),
            O::J(JType::Jal),
        ]
    };

    /// A stable small id for this operation, `0..56`.
    ///
    /// Ids index frequency tables in SADC; they are *not* the architectural
    /// opcode.
    pub fn id(self) -> u8 {
        Operation::ALL.iter().position(|&op| op == self).expect("every operation is in ALL") as u8
    }

    /// Recovers an operation from its [`Operation::id`].
    ///
    /// # Panics
    ///
    /// Panics if `id >= 56`.
    pub fn from_id(id: u8) -> Operation {
        Operation::ALL[usize::from(id)]
    }

    /// Number of distinct operations.
    pub const COUNT: usize = 56;

    /// The operand streams this operation draws from.
    pub fn operand_spec(self) -> OperandSpec {
        use RegField::*;
        match self {
            Operation::R(op) => match op {
                RType::Sll | RType::Srl | RType::Sra => {
                    OperandSpec { reg_fields: &[Rt, Rd, Shamt], imm: ImmKind::None }
                }
                RType::Sllv | RType::Srlv | RType::Srav => {
                    OperandSpec { reg_fields: &[Rs, Rt, Rd], imm: ImmKind::None }
                }
                RType::Jr | RType::Mthi | RType::Mtlo => {
                    OperandSpec { reg_fields: &[Rs], imm: ImmKind::None }
                }
                RType::Jalr => OperandSpec { reg_fields: &[Rs, Rd], imm: ImmKind::None },
                RType::Syscall | RType::Break => {
                    OperandSpec { reg_fields: &[], imm: ImmKind::None }
                }
                RType::Mfhi | RType::Mflo => OperandSpec { reg_fields: &[Rd], imm: ImmKind::None },
                RType::Mult | RType::Multu | RType::Div | RType::Divu => {
                    OperandSpec { reg_fields: &[Rs, Rt], imm: ImmKind::None }
                }
                _ => OperandSpec { reg_fields: &[Rs, Rt, Rd], imm: ImmKind::None },
            },
            Operation::I(op) => match op {
                IType::Lui => OperandSpec { reg_fields: &[Rt], imm: ImmKind::Imm16 },
                IType::Blez | IType::Bgtz => OperandSpec { reg_fields: &[Rs], imm: ImmKind::Imm16 },
                _ => OperandSpec { reg_fields: &[Rs, Rt], imm: ImmKind::Imm16 },
            },
            Operation::B(_) => OperandSpec { reg_fields: &[Rs], imm: ImmKind::Imm16 },
            Operation::J(_) => OperandSpec { reg_fields: &[], imm: ImmKind::Imm26 },
        }
    }
}

impl Operation {
    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Operation::R(op) => match op {
                RType::Sll => "sll",
                RType::Srl => "srl",
                RType::Sra => "sra",
                RType::Sllv => "sllv",
                RType::Srlv => "srlv",
                RType::Srav => "srav",
                RType::Jr => "jr",
                RType::Jalr => "jalr",
                RType::Syscall => "syscall",
                RType::Break => "break",
                RType::Mfhi => "mfhi",
                RType::Mthi => "mthi",
                RType::Mflo => "mflo",
                RType::Mtlo => "mtlo",
                RType::Mult => "mult",
                RType::Multu => "multu",
                RType::Div => "div",
                RType::Divu => "divu",
                RType::Add => "add",
                RType::Addu => "addu",
                RType::Sub => "sub",
                RType::Subu => "subu",
                RType::And => "and",
                RType::Or => "or",
                RType::Xor => "xor",
                RType::Nor => "nor",
                RType::Slt => "slt",
                RType::Sltu => "sltu",
            },
            Operation::I(op) => match op {
                IType::Beq => "beq",
                IType::Bne => "bne",
                IType::Blez => "blez",
                IType::Bgtz => "bgtz",
                IType::Addi => "addi",
                IType::Addiu => "addiu",
                IType::Slti => "slti",
                IType::Sltiu => "sltiu",
                IType::Andi => "andi",
                IType::Ori => "ori",
                IType::Xori => "xori",
                IType::Lui => "lui",
                IType::Lb => "lb",
                IType::Lh => "lh",
                IType::Lwl => "lwl",
                IType::Lw => "lw",
                IType::Lbu => "lbu",
                IType::Lhu => "lhu",
                IType::Lwr => "lwr",
                IType::Sb => "sb",
                IType::Sh => "sh",
                IType::Swl => "swl",
                IType::Sw => "sw",
                IType::Swr => "swr",
            },
            Operation::B(op) => match op {
                RegImm::Bltz => "bltz",
                RegImm::Bgez => "bgez",
            },
            Operation::J(op) => match op {
                JType::J => "j",
                JType::Jal => "jal",
            },
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

impl fmt::Display for Instruction {
    /// Disassembles to conventional MIPS assembler syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Instruction::nop() {
            return write!(f, "nop");
        }
        let m = self.operation().mnemonic();
        match *self {
            Instruction::R { op, rs, rt, rd, shamt } => match op {
                RType::Sll | RType::Srl | RType::Sra => write!(f, "{m} {rd}, {rt}, {shamt}"),
                RType::Sllv | RType::Srlv | RType::Srav => write!(f, "{m} {rd}, {rt}, {rs}"),
                RType::Jr | RType::Mthi | RType::Mtlo => write!(f, "{m} {rs}"),
                RType::Jalr => write!(f, "{m} {rd}, {rs}"),
                RType::Syscall | RType::Break => write!(f, "{m}"),
                RType::Mfhi | RType::Mflo => write!(f, "{m} {rd}"),
                RType::Mult | RType::Multu | RType::Div | RType::Divu => {
                    write!(f, "{m} {rs}, {rt}")
                }
                _ => write!(f, "{m} {rd}, {rs}, {rt}"),
            },
            Instruction::I { op, rs, rt, imm } => match op {
                IType::Lui => write!(f, "{m} {rt}, {:#x}", imm),
                IType::Lb
                | IType::Lh
                | IType::Lwl
                | IType::Lw
                | IType::Lbu
                | IType::Lhu
                | IType::Lwr
                | IType::Sb
                | IType::Sh
                | IType::Swl
                | IType::Sw
                | IType::Swr => write!(f, "{m} {rt}, {}({rs})", imm as i16),
                IType::Beq | IType::Bne => write!(f, "{m} {rs}, {rt}, {}", imm as i16),
                IType::Blez | IType::Bgtz => write!(f, "{m} {rs}, {}", imm as i16),
                _ => write!(f, "{m} {rt}, {rs}, {}", imm as i16),
            },
            Instruction::B { rs, imm, .. } => write!(f, "{m} {rs}, {}", imm as i16),
            Instruction::J { target, .. } => write!(f, "{m} {:#x}", target << 2),
        }
    }
}

/// Splits a `.text` section of big-endian words into instructions.
///
/// # Errors
///
/// Returns the first word that fails to decode.  `bytes.len()` must be a
/// multiple of 4 (trailing partial words are an error too, reported as a
/// zero-word decode failure).
pub fn decode_text(bytes: &[u8]) -> Result<Vec<Instruction>, DecodeInstructionError> {
    if !bytes.len().is_multiple_of(4) {
        return Err(DecodeInstructionError { word: 0 });
    }
    bytes
        .chunks_exact(4)
        .map(|c| Instruction::decode(u32::from_be_bytes(c.try_into().expect("chunk of 4"))))
        .collect()
}

/// Encodes instructions back to big-endian `.text` bytes.
pub fn encode_text(instructions: &[Instruction]) -> Vec<u8> {
    let mut out = Vec::with_capacity(instructions.len() * 4);
    for insn in instructions {
        out.extend_from_slice(&insn.encode().to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_ops() -> impl Iterator<Item = Operation> {
        (0..Operation::COUNT as u8).map(Operation::from_id)
    }

    #[test]
    fn ids_are_stable_and_invertible() {
        for (i, op) in all_ops().enumerate() {
            assert_eq!(usize::from(op.id()), i);
            assert_eq!(Operation::from_id(op.id()), op);
        }
    }

    #[test]
    fn known_encodings() {
        // addiu $sp, $sp, -8  => 0x27BDFFF8
        assert_eq!(Instruction::addiu(Reg::SP, Reg::SP, 0xFFF8).encode(), 0x27BD_FFF8);
        // lw $ra, 4($sp) => 0x8FBF0004
        assert_eq!(Instruction::lw(Reg::RA, 4, Reg::SP).encode(), 0x8FBF_0004);
        // jr $ra => 0x03E00008
        assert_eq!(Instruction::jr(Reg::RA).encode(), 0x03E0_0008);
        // nop => 0x00000000
        assert_eq!(Instruction::nop().encode(), 0);
        // addu $v0, $a0, $a1 => 0x00851021
        assert_eq!(Instruction::addu(Reg::V0, Reg::A0, Reg::A1).encode(), 0x0085_1021);
    }

    #[test]
    fn decode_inverts_encode_for_representative_words() {
        let samples = [
            Instruction::nop(),
            Instruction::jr(Reg::RA),
            Instruction::addiu(Reg::SP, Reg::SP, 0xFFF8),
            Instruction::I { op: IType::Lui, rs: Reg::ZERO, rt: Reg::GP, imm: 0x1000 },
            Instruction::B { op: RegImm::Bgez, rs: Reg::A0, imm: 0x0010 },
            Instruction::J { op: JType::Jal, target: 0x0012_3456 },
            Instruction::R { op: RType::Sll, rs: Reg::ZERO, rt: Reg::T0, rd: Reg::T0, shamt: 2 },
        ];
        for insn in samples {
            assert_eq!(Instruction::decode(insn.encode()).unwrap(), insn);
        }
    }

    #[test]
    fn unknown_opcode_is_an_error() {
        // Opcode 0x3F is unused in MIPS-I.
        let word = 0x3Fu32 << 26;
        assert!(Instruction::decode(word).is_err());
        // SPECIAL with unused funct 0x3F.
        assert!(Instruction::decode(0x0000_003F).is_err());
        // REGIMM with rt=5 (unsupported condition).
        assert!(Instruction::decode(0x01 << 26 | 5 << 16).is_err());
    }

    #[test]
    fn operand_specs_match_register_fields() {
        let insn =
            Instruction::R { op: RType::Sll, rs: Reg::ZERO, rt: Reg::T0, rd: Reg::V0, shamt: 7 };
        assert_eq!(insn.register_fields(), vec![8, 2, 7]); // rt, rd, shamt
        let insn = Instruction::lw(Reg::RA, 4, Reg::SP);
        assert_eq!(insn.register_fields(), vec![29, 31]); // rs, rt
        let insn = Instruction::J { op: JType::J, target: 99 };
        assert!(insn.register_fields().is_empty());
    }

    #[test]
    fn assemble_round_trips_every_operation() {
        for op in all_ops() {
            let spec = op.operand_spec();
            let regs: Vec<u8> = (0..spec.reg_fields.len() as u8).map(|i| i + 3).collect();
            let imm16 = matches!(spec.imm, ImmKind::Imm16).then_some(0xBEEF);
            let imm26 = matches!(spec.imm, ImmKind::Imm26).then_some(0x12_3456);
            let insn = Instruction::assemble(op, &regs, imm16, imm26);
            assert_eq!(insn.operation(), op);
            assert_eq!(insn.register_fields(), regs);
            assert_eq!(insn.imm16(), imm16);
            assert_eq!(insn.imm26(), imm26);
            // The machine word also survives the trip.
            assert_eq!(Instruction::decode(insn.encode()).unwrap(), insn);
        }
    }

    #[test]
    fn text_section_round_trips() {
        let program = vec![
            Instruction::addiu(Reg::SP, Reg::SP, 0xFFF8),
            Instruction::sw(Reg::RA, 4, Reg::SP),
            Instruction::J { op: JType::Jal, target: 0x40 },
            Instruction::lw(Reg::RA, 4, Reg::SP),
            Instruction::addiu(Reg::SP, Reg::SP, 8),
            Instruction::jr(Reg::RA),
            Instruction::nop(),
        ];
        let bytes = encode_text(&program);
        assert_eq!(bytes.len(), 28);
        assert_eq!(decode_text(&bytes).unwrap(), program);
    }

    #[test]
    fn misaligned_text_is_an_error() {
        assert!(decode_text(&[0, 0, 0]).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn register_range_is_enforced() {
        let _ = Reg::new(32);
    }

    #[test]
    fn register_display() {
        assert_eq!(Reg::SP.to_string(), "$sp");
        assert_eq!(Reg::ZERO.to_string(), "$zero");
        assert_eq!(Reg::new(9).to_string(), "$t1");
    }

    #[test]
    fn disassembly_matches_convention() {
        assert_eq!(Instruction::nop().to_string(), "nop");
        assert_eq!(Instruction::addiu(Reg::SP, Reg::SP, 0xFFF8).to_string(), "addiu $sp, $sp, -8");
        assert_eq!(Instruction::lw(Reg::RA, 4, Reg::SP).to_string(), "lw $ra, 4($sp)");
        assert_eq!(Instruction::jr(Reg::RA).to_string(), "jr $ra");
        assert_eq!(Instruction::addu(Reg::V0, Reg::A0, Reg::A1).to_string(), "addu $v0, $a0, $a1");
        assert_eq!(Instruction::J { op: JType::Jal, target: 0x100 }.to_string(), "jal 0x400");
        assert_eq!(
            Instruction::I { op: IType::Lui, rs: Reg::ZERO, rt: Reg::GP, imm: 0x1000 }.to_string(),
            "lui $gp, 0x1000"
        );
        assert_eq!(
            Instruction::B { op: RegImm::Bltz, rs: Reg::A0, imm: 0xFFFE }.to_string(),
            "bltz $a0, -2"
        );
        assert_eq!(
            Instruction::R { op: RType::Sll, rs: Reg::ZERO, rt: Reg::T0, rd: Reg::V0, shamt: 2 }
                .to_string(),
            "sll $v0, $t0, 2"
        );
    }

    #[test]
    fn every_operation_disassembles_without_panicking() {
        for op in all_ops() {
            let spec = op.operand_spec();
            let regs: Vec<u8> = (0..spec.reg_fields.len() as u8).map(|i| i + 2).collect();
            let imm16 = matches!(spec.imm, ImmKind::Imm16).then_some(12u16);
            let imm26 = matches!(spec.imm, ImmKind::Imm26).then_some(48u32);
            let insn = Instruction::assemble(op, &regs, imm16, imm26);
            let text = insn.to_string();
            assert!(text.starts_with(op.mnemonic()) || text == "nop", "{op:?}: {text}");
        }
    }
}
