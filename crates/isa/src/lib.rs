//! Instruction-set models for code compression.
//!
//! The DAC'98 paper evaluates on two architectures: a fixed-width RISC
//! (MIPS) and a variable-length CISC (x86 / Pentium Pro).  Both codecs need
//! more than raw bytes from the ISA:
//!
//! * **SAMC** needs fixed-size instruction words it can cut into bit
//!   streams ([`mips`]), and falls back to plain bytes on x86.
//! * **SADC** needs full structural decode: simplified opcodes, register
//!   fields and immediates on MIPS ([`mips::Instruction`]), and the
//!   opcode / modrm+sib / displacement+immediate byte split on x86
//!   ([`x86::InstructionLayout`]).
//! * The decompressor's *instruction generator* (paper Fig. 6) must be able
//!   to reassemble bit-exact machine words from those pieces — so every
//!   model here is a reversible encoder/decoder, not just a disassembler.
//!
//! # Examples
//!
//! ```
//! use cce_isa::mips::{Instruction, Reg};
//!
//! let insn = Instruction::addiu(Reg::SP, Reg::SP, 0xFFF8); // addiu sp, sp, -8
//! let word = insn.encode();
//! assert_eq!(Instruction::decode(word)?, insn);
//! # Ok::<(), cce_isa::mips::DecodeInstructionError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mips;
pub mod x86;

/// The two instruction sets the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Isa {
    /// MIPS-I: 32-bit fixed-width RISC.
    Mips,
    /// IA-32 as on the Pentium Pro: variable-length CISC.
    X86,
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Isa::Mips => write!(f, "MIPS"),
            Isa::X86 => write!(f, "x86"),
        }
    }
}
