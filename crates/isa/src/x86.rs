//! IA-32 (Pentium Pro) instruction layout model.
//!
//! x86 instructions are variable length, so SAMC cannot cut them into
//! fixed bit streams; the paper instead forms **three byte streams** per
//! program — opcode bytes, ModRM+SIB bytes, and displacement+immediate
//! bytes — and notes that a Pentium decompressor needs no instruction
//! generator because the streams are plain consecutive bytes.
//!
//! [`decode_layout`] is a table-driven length decoder for the common IA-32
//! subset (all of the one-byte map that compilers emit plus the frequent
//! two-byte `0F` instructions).  [`split_streams`] applies it across a text
//! section and [`StreamSplit::reassemble`] restores the original bytes —
//! the losslessness SADC relies on.
//!
//! The [`asm`] module is a small assembler for the same subset; the
//! synthetic workload generator uses it so every byte the benchmarks
//! compress is a *decodable* instruction stream.

use std::error::Error;
use std::fmt;

/// Why layout decoding failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeLayoutError {
    /// The byte stream ended inside an instruction.
    Truncated,
    /// An opcode outside the supported subset.
    UnknownOpcode {
        /// Primary opcode byte.
        opcode: u8,
        /// Second byte for `0F`-escaped opcodes.
        second: Option<u8>,
    },
    /// The 16-bit address-size override (`0x67`) is outside the model.
    UnsupportedAddressSize,
}

impl fmt::Display for DecodeLayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "instruction truncated"),
            Self::UnknownOpcode { opcode, second: None } => {
                write!(f, "unsupported opcode {opcode:#04x}")
            }
            Self::UnknownOpcode { opcode, second: Some(s) } => {
                write!(f, "unsupported opcode {opcode:#04x} {s:#04x}")
            }
            Self::UnsupportedAddressSize => write!(f, "16-bit address size not modelled"),
        }
    }
}

impl Error for DecodeLayoutError {}

/// Byte-level layout of one decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstructionLayout {
    /// Legacy prefix bytes (operand-size, lock, rep, segment).
    pub prefix_len: u8,
    /// Opcode bytes (1, or 2 for `0F`-escaped).
    pub opcode_len: u8,
    /// 1 if a ModRM byte follows, else 0.
    pub modrm_len: u8,
    /// 1 if a SIB byte follows, else 0.
    pub sib_len: u8,
    /// Displacement bytes (0, 1 or 4).
    pub disp_len: u8,
    /// Immediate bytes (0, 1, 2, 3, 4 or 6).
    pub imm_len: u8,
}

impl InstructionLayout {
    /// Total instruction length in bytes.
    pub fn total_len(&self) -> usize {
        usize::from(self.prefix_len)
            + usize::from(self.opcode_len)
            + usize::from(self.modrm_len)
            + usize::from(self.sib_len)
            + usize::from(self.disp_len)
            + usize::from(self.imm_len)
    }

    /// Length of the paper's *opcode stream* contribution
    /// (prefixes + opcode bytes).
    pub fn opcode_stream_len(&self) -> usize {
        usize::from(self.prefix_len) + usize::from(self.opcode_len)
    }

    /// Length of the *ModRM/SIB stream* contribution.
    pub fn modrm_stream_len(&self) -> usize {
        usize::from(self.modrm_len) + usize::from(self.sib_len)
    }

    /// Length of the *immediate/displacement stream* contribution.
    pub fn imm_stream_len(&self) -> usize {
        usize::from(self.disp_len) + usize::from(self.imm_len)
    }
}

/// Immediate encoding class of an opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Imm {
    None,
    /// 8-bit immediate (or rel8).
    B,
    /// 16-bit immediate.
    W,
    /// 16/32-bit immediate depending on the operand-size prefix (or rel32).
    V,
    /// 48-bit far pointer.
    Far,
    /// `enter`: imm16 + imm8.
    Enter,
    /// 32-bit moffs (mov AL/eAX, [moffs]).
    Moffs,
    /// Group 3 (`F6`/`F7`): immediate only for the TEST forms (/0, /1).
    Group3B,
    Group3V,
}

/// One-byte opcode table entry: `(has_modrm, imm)`.
fn one_byte_spec(op: u8) -> Result<(bool, Imm), DecodeLayoutError> {
    use Imm::*;
    Ok(match op {
        // ALU block (add/or/adc/sbb/and/sub/xor/cmp) plus the interleaved
        // push/pop-segment and BCD-adjust singles.  Segment prefixes and the
        // 0x0F escape never reach this table — the caller consumes them.
        0x00..=0x3F => match op & 0x07 {
            0x00..=0x03 => (true, None),
            0x04 => (false, B),
            0x05 => (false, V),
            _ => (false, None),
        },
        0x40..=0x5F => (false, None),    // inc/dec/push/pop r32
        0x60 | 0x61 => (false, None),    // pusha/popa
        0x62 | 0x63 => (true, None),     // bound/arpl
        0x68 => (false, V),              // push imm32
        0x69 => (true, V),               // imul r, rm, imm32
        0x6A => (false, B),              // push imm8
        0x6B => (true, B),               // imul r, rm, imm8
        0x6C..=0x6F => (false, None),    // ins/outs
        0x70..=0x7F => (false, B),       // jcc rel8
        0x80 | 0x82 | 0x83 => (true, B), // ALU group, imm8
        0x81 => (true, V),               // ALU group, imm32
        0x84..=0x8F => (true, None),     // test/xchg/mov/lea/mov-seg/pop
        0x90..=0x99 => (false, None),    // nop/xchg/cbw/cdq
        0x9A => (false, Far),            // call far
        0x9B..=0x9F => (false, None),    // wait/pushf/popf/sahf/lahf
        0xA0..=0xA3 => (false, Moffs),
        0xA4..=0xA7 => (false, None), // movs/cmps
        0xA8 => (false, B),           // test al, imm8
        0xA9 => (false, V),           // test eax, imm32
        0xAA..=0xAF => (false, None), // stos/lods/scas
        0xB0..=0xB7 => (false, B),    // mov r8, imm8
        0xB8..=0xBF => (false, V),    // mov r32, imm32
        0xC0 | 0xC1 => (true, B),     // shift group, imm8
        0xC2 => (false, W),           // ret imm16
        0xC3 => (false, None),        // ret
        0xC4 | 0xC5 => (true, None),  // les/lds
        0xC6 => (true, B),            // mov rm8, imm8
        0xC7 => (true, V),            // mov rm32, imm32
        0xC8 => (false, Enter),       // enter imm16, imm8
        0xC9 => (false, None),        // leave
        0xCA => (false, W),           // retf imm16
        0xCB | 0xCC => (false, None), // retf / int3
        0xCD => (false, B),           // int imm8
        0xCE | 0xCF => (false, None), // into / iret
        0xD0..=0xD3 => (true, None),  // shift groups by 1 / cl
        0xD4 | 0xD5 => (false, B),    // aam/aad
        0xD6 | 0xD7 => (false, None), // salc/xlat
        0xD8..=0xDF => (true, None),  // x87 escape
        0xE0..=0xE7 => (false, B),    // loop/jcxz/in/out imm8
        0xE8 | 0xE9 => (false, V),    // call/jmp rel32
        0xEA => (false, Far),         // jmp far
        0xEB => (false, B),           // jmp rel8
        0xEC..=0xEF => (false, None), // in/out dx
        0xF1 | 0xF4 | 0xF5 => (false, None),
        0xF6 => (true, Group3B),
        0xF7 => (true, Group3V),
        0xF8..=0xFD => (false, None), // flag ops
        0xFE | 0xFF => (true, None),  // inc/dec/call/jmp/push groups
        _ => return Err(DecodeLayoutError::UnknownOpcode { opcode: op, second: Option::None }),
    })
}

/// Two-byte (`0F xx`) opcode table entry.
fn two_byte_spec(op: u8) -> Result<(bool, Imm), DecodeLayoutError> {
    use Imm::*;
    Ok(match op {
        0x1F => (true, None),                             // multi-byte nop
        0x31 => (false, None),                            // rdtsc
        0x40..=0x4F => (true, None),                      // cmovcc
        0x80..=0x8F => (false, V),                        // jcc rel32
        0x90..=0x9F => (true, None),                      // setcc
        0xA2 => (false, None),                            // cpuid
        0xA3 | 0xA5 | 0xAB | 0xAD | 0xAF => (true, None), // bt/shld/bts/shrd/imul
        0xA4 | 0xAC => (true, B),                         // shld/shrd imm8
        0xB0 | 0xB1 => (true, None),                      // cmpxchg
        0xB6 | 0xB7 | 0xBE | 0xBF => (true, None),        // movzx/movsx
        0xC0 | 0xC1 => (true, None),                      // xadd
        0xC8..=0xCF => (false, None),                     // bswap
        _ => return Err(DecodeLayoutError::UnknownOpcode { opcode: 0x0F, second: Some(op) }),
    })
}

fn is_prefix(b: u8) -> bool {
    matches!(b, 0x26 | 0x2E | 0x36 | 0x3E | 0x64 | 0x65 | 0x66 | 0x67 | 0xF0 | 0xF2 | 0xF3)
}

/// Decodes the byte-level layout of the instruction starting at `bytes[0]`.
///
/// # Errors
///
/// * [`DecodeLayoutError::Truncated`] if the slice ends mid-instruction.
/// * [`DecodeLayoutError::UnknownOpcode`] outside the supported subset.
/// * [`DecodeLayoutError::UnsupportedAddressSize`] on a `0x67` prefix.
pub fn decode_layout(bytes: &[u8]) -> Result<InstructionLayout, DecodeLayoutError> {
    let mut i = 0usize;
    let mut operand_size_16 = false;
    while i < bytes.len() && is_prefix(bytes[i]) {
        if bytes[i] == 0x67 {
            return Err(DecodeLayoutError::UnsupportedAddressSize);
        }
        if bytes[i] == 0x66 {
            operand_size_16 = true;
        }
        i += 1;
        if i > 4 {
            break; // architectural prefix limit for our subset
        }
    }
    let prefix_len = i as u8;
    let op = *bytes.get(i).ok_or(DecodeLayoutError::Truncated)?;
    i += 1;

    let (opcode_len, has_modrm, imm) = if op == 0x0F {
        let second = *bytes.get(i).ok_or(DecodeLayoutError::Truncated)?;
        i += 1;
        let (m, imm) = two_byte_spec(second)?;
        (2u8, m, imm)
    } else {
        let (m, imm) = one_byte_spec(op)?;
        (1u8, m, imm)
    };

    let mut modrm_len = 0u8;
    let mut sib_len = 0u8;
    let mut disp_len = 0u8;
    let mut group3_reg = 0u8;
    if has_modrm {
        let modrm = *bytes.get(i).ok_or(DecodeLayoutError::Truncated)?;
        i += 1;
        modrm_len = 1;
        group3_reg = modrm >> 3 & 0x07;
        let mode = modrm >> 6;
        let rm = modrm & 0x07;
        if mode != 0b11 {
            if rm == 0b100 {
                let sib = *bytes.get(i).ok_or(DecodeLayoutError::Truncated)?;
                sib_len = 1;
                if mode == 0b00 && sib & 0x07 == 0b101 {
                    disp_len = 4; // SIB with no base: disp32
                }
            }
            match mode {
                0b00 => {
                    if rm == 0b101 {
                        disp_len = 4;
                    }
                }
                0b01 => disp_len = 1,
                0b10 => disp_len = 4,
                _ => unreachable!(),
            }
        }
    }

    let v_len: u8 = if operand_size_16 { 2 } else { 4 };
    let imm_len = match imm {
        Imm::None => 0,
        Imm::B => 1,
        Imm::W => 2,
        Imm::V => v_len,
        Imm::Far => 6,
        Imm::Enter => 3,
        Imm::Moffs => 4,
        Imm::Group3B => {
            if group3_reg <= 1 {
                1
            } else {
                0
            }
        }
        Imm::Group3V => {
            if group3_reg <= 1 {
                v_len
            } else {
                0
            }
        }
    };

    let layout =
        InstructionLayout { prefix_len, opcode_len, modrm_len, sib_len, disp_len, imm_len };
    if layout.total_len() > bytes.len() {
        return Err(DecodeLayoutError::Truncated);
    }
    Ok(layout)
}

/// Progress of an incremental layout computation (see
/// [`progressive_layout`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutProgress {
    /// A ModRM byte is required before lengths are known.
    NeedModrm,
    /// A SIB byte is required (ModRM said so).
    NeedSib,
    /// All lengths are now known.
    Complete(InstructionLayout),
}

/// Computes an instruction's layout incrementally, for decompressors that
/// hold the opcode bytes and the ModRM/SIB bytes in *separate* streams
/// (SADC's Pentium decoder).
///
/// `prefix_opcode` must be the complete prefix+opcode byte string of one
/// instruction.  Call with `modrm = None` first; if the result is
/// [`LayoutProgress::NeedModrm`], pull one byte from the ModRM stream and
/// call again; likewise for [`LayoutProgress::NeedSib`].  On
/// [`LayoutProgress::Complete`], `disp_len + imm_len` bytes remain to be
/// pulled from the displacement/immediate stream.
///
/// # Errors
///
/// Same conditions as [`decode_layout`].
pub fn progressive_layout(
    prefix_opcode: &[u8],
    modrm: Option<u8>,
    sib: Option<u8>,
) -> Result<LayoutProgress, DecodeLayoutError> {
    let mut i = 0usize;
    let mut operand_size_16 = false;
    while i < prefix_opcode.len() && is_prefix(prefix_opcode[i]) {
        if prefix_opcode[i] == 0x67 {
            return Err(DecodeLayoutError::UnsupportedAddressSize);
        }
        if prefix_opcode[i] == 0x66 {
            operand_size_16 = true;
        }
        i += 1;
    }
    let prefix_len = i as u8;
    let op = *prefix_opcode.get(i).ok_or(DecodeLayoutError::Truncated)?;
    i += 1;
    let (opcode_len, has_modrm, imm) = if op == 0x0F {
        let second = *prefix_opcode.get(i).ok_or(DecodeLayoutError::Truncated)?;
        let (m, imm) = two_byte_spec(second)?;
        (2u8, m, imm)
    } else {
        let (m, imm) = one_byte_spec(op)?;
        (1u8, m, imm)
    };

    let mut modrm_len = 0u8;
    let mut sib_len = 0u8;
    let mut disp_len = 0u8;
    let mut group3_reg = 0u8;
    if has_modrm {
        let Some(modrm) = modrm else {
            return Ok(LayoutProgress::NeedModrm);
        };
        modrm_len = 1;
        group3_reg = modrm >> 3 & 0x07;
        let mode = modrm >> 6;
        let rm = modrm & 0x07;
        if mode != 0b11 {
            if rm == 0b100 {
                let Some(sib) = sib else {
                    return Ok(LayoutProgress::NeedSib);
                };
                sib_len = 1;
                if mode == 0b00 && sib & 0x07 == 0b101 {
                    disp_len = 4;
                }
            }
            match mode {
                0b00 => {
                    if rm == 0b101 {
                        disp_len = 4;
                    }
                }
                0b01 => disp_len = 1,
                0b10 => disp_len = 4,
                _ => unreachable!(),
            }
        }
    }
    let v_len: u8 = if operand_size_16 { 2 } else { 4 };
    let imm_len = match imm {
        Imm::None => 0,
        Imm::B => 1,
        Imm::W => 2,
        Imm::V => v_len,
        Imm::Far => 6,
        Imm::Enter => 3,
        Imm::Moffs => 4,
        Imm::Group3B => u8::from(group3_reg <= 1),
        Imm::Group3V => {
            if group3_reg <= 1 {
                v_len
            } else {
                0
            }
        }
    };
    Ok(LayoutProgress::Complete(InstructionLayout {
        prefix_len,
        opcode_len,
        modrm_len,
        sib_len,
        disp_len,
        imm_len,
    }))
}

/// A text section split into the paper's three Pentium streams.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StreamSplit {
    /// Prefix + opcode bytes of every instruction, concatenated.
    pub opcode: Vec<u8>,
    /// ModRM + SIB bytes.
    pub modrm_sib: Vec<u8>,
    /// Displacement + immediate bytes.
    pub imm_disp: Vec<u8>,
    /// Per-instruction layouts, in order — the metadata the decompressor's
    /// control logic derives from the opcode stream.
    pub layouts: Vec<InstructionLayout>,
}

impl StreamSplit {
    /// Total bytes across all three streams (equals the original text size).
    pub fn total_len(&self) -> usize {
        self.opcode.len() + self.modrm_sib.len() + self.imm_disp.len()
    }

    /// Reassembles the original text section — the x86 analogue of the
    /// paper's instruction generator.
    pub fn reassemble(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total_len());
        let (mut o, mut m, mut d) = (0usize, 0usize, 0usize);
        for layout in &self.layouts {
            let ol = layout.opcode_stream_len();
            out.extend_from_slice(&self.opcode[o..o + ol]);
            o += ol;
            let ml = layout.modrm_stream_len();
            out.extend_from_slice(&self.modrm_sib[m..m + ml]);
            m += ml;
            let dl = layout.imm_stream_len();
            out.extend_from_slice(&self.imm_disp[d..d + dl]);
            d += dl;
        }
        out
    }
}

/// Splits `text` into the three Pentium streams.
///
/// # Errors
///
/// Returns the offset and cause of the first undecodable instruction.
pub fn split_streams(text: &[u8]) -> Result<StreamSplit, (usize, DecodeLayoutError)> {
    let mut split = StreamSplit::default();
    let mut i = 0usize;
    while i < text.len() {
        let layout = decode_layout(&text[i..]).map_err(|e| (i, e))?;
        let mut j = i;
        let ol = layout.opcode_stream_len();
        split.opcode.extend_from_slice(&text[j..j + ol]);
        j += ol;
        let ml = layout.modrm_stream_len();
        split.modrm_sib.extend_from_slice(&text[j..j + ml]);
        j += ml;
        let dl = layout.imm_stream_len();
        split.imm_disp.extend_from_slice(&text[j..j + dl]);
        j += dl;
        split.layouts.push(layout);
        i = j;
    }
    Ok(split)
}

pub mod asm {
    //! A small IA-32 assembler covering the subset [`decode_layout`]
    //! understands; the synthetic workload generator builds programs from
    //! these so every generated byte stream is decodable.
    //!
    //! [`decode_layout`]: super::decode_layout

    /// 32-bit register numbers (eax=0 .. edi=7).
    #[allow(missing_docs)]
    pub mod reg {
        pub const EAX: u8 = 0;
        pub const ECX: u8 = 1;
        pub const EDX: u8 = 2;
        pub const EBX: u8 = 3;
        pub const ESP: u8 = 4;
        pub const EBP: u8 = 5;
        pub const ESI: u8 = 6;
        pub const EDI: u8 = 7;
    }

    /// ALU operation selector for the `00`–`3B` block and `80`/`81`/`83` groups.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    #[allow(missing_docs)]
    pub enum Alu {
        Add = 0,
        Or = 1,
        Adc = 2,
        Sbb = 3,
        And = 4,
        Sub = 5,
        Xor = 6,
        Cmp = 7,
    }

    /// Condition codes for `jcc`/`setcc`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    #[allow(missing_docs)]
    pub enum Cc {
        O = 0x0,
        No = 0x1,
        B = 0x2,
        Ae = 0x3,
        E = 0x4,
        Ne = 0x5,
        Be = 0x6,
        A = 0x7,
        S = 0x8,
        Ns = 0x9,
        P = 0xA,
        Np = 0xB,
        L = 0xC,
        Ge = 0xD,
        Le = 0xE,
        G = 0xF,
    }

    fn modrm(mode: u8, reg: u8, rm: u8) -> u8 {
        mode << 6 | (reg & 7) << 3 | (rm & 7)
    }

    /// ModRM (+ optional SIB) for `[base + disp8]` addressing.
    fn mem_disp8(reg: u8, base: u8, out: &mut Vec<u8>) {
        out.push(modrm(0b01, reg, base));
        if base == reg::ESP {
            out.push(0x24); // SIB: scale 0, no index, base esp
        }
    }

    /// `mov r32, imm32`.
    pub fn mov_r_imm(r: u8, imm: u32) -> Vec<u8> {
        let mut v = vec![0xB8 + (r & 7)];
        v.extend_from_slice(&imm.to_le_bytes());
        v
    }

    /// `mov dst, src` (register to register).
    pub fn mov_rr(dst: u8, src: u8) -> Vec<u8> {
        vec![0x89, modrm(0b11, src, dst)]
    }

    /// `mov r16, imm16` (with the operand-size override prefix).
    pub fn mov_r16_imm16(r: u8, imm: u16) -> Vec<u8> {
        let mut v = vec![0x66, 0xB8 + (r & 7)];
        v.extend_from_slice(&imm.to_le_bytes());
        v
    }

    /// `add r16, imm16` (`66 81 /0`).
    pub fn add_r16_imm16(r: u8, imm: u16) -> Vec<u8> {
        let mut v = vec![0x66, 0x81, modrm(0b11, 0, r)];
        v.extend_from_slice(&imm.to_le_bytes());
        v
    }

    /// `mov dst, [base + disp8]`.
    pub fn mov_load(dst: u8, base: u8, disp: i8) -> Vec<u8> {
        let mut v = vec![0x8B];
        mem_disp8(dst, base, &mut v);
        v.push(disp as u8);
        v
    }

    /// `mov [base + disp8], src`.
    pub fn mov_store(base: u8, disp: i8, src: u8) -> Vec<u8> {
        let mut v = vec![0x89];
        mem_disp8(src, base, &mut v);
        v.push(disp as u8);
        v
    }

    /// `push r32`.
    pub fn push_r(r: u8) -> Vec<u8> {
        vec![0x50 + (r & 7)]
    }

    /// `pop r32`.
    pub fn pop_r(r: u8) -> Vec<u8> {
        vec![0x58 + (r & 7)]
    }

    /// `push imm8` (sign-extended).
    pub fn push_imm8(imm: i8) -> Vec<u8> {
        vec![0x6A, imm as u8]
    }

    /// ALU `op dst, src` (register forms, e.g. `add eax, ecx`).
    pub fn alu_rr(op: Alu, dst: u8, src: u8) -> Vec<u8> {
        vec![(op as u8) << 3 | 0x01, modrm(0b11, src, dst)]
    }

    /// ALU `op r32, imm8` (the compiler-favoured `83 /op` form).
    pub fn alu_r_imm8(op: Alu, r: u8, imm: i8) -> Vec<u8> {
        vec![0x83, modrm(0b11, op as u8, r), imm as u8]
    }

    /// ALU `op r32, imm32`.
    pub fn alu_r_imm32(op: Alu, r: u8, imm: u32) -> Vec<u8> {
        let mut v = vec![0x81, modrm(0b11, op as u8, r)];
        v.extend_from_slice(&imm.to_le_bytes());
        v
    }

    /// `test r32, r32`.
    pub fn test_rr(a: u8, b: u8) -> Vec<u8> {
        vec![0x85, modrm(0b11, b, a)]
    }

    /// `jcc rel8`.
    pub fn jcc_rel8(cc: Cc, rel: i8) -> Vec<u8> {
        vec![0x70 + cc as u8, rel as u8]
    }

    /// `jcc rel32` (the `0F 8x` long form).
    pub fn jcc_rel32(cc: Cc, rel: i32) -> Vec<u8> {
        let mut v = vec![0x0F, 0x80 + cc as u8];
        v.extend_from_slice(&rel.to_le_bytes());
        v
    }

    /// `jmp rel8`.
    pub fn jmp_rel8(rel: i8) -> Vec<u8> {
        vec![0xEB, rel as u8]
    }

    /// `jmp rel32`.
    pub fn jmp_rel32(rel: i32) -> Vec<u8> {
        let mut v = vec![0xE9];
        v.extend_from_slice(&rel.to_le_bytes());
        v
    }

    /// `call rel32`.
    pub fn call_rel32(rel: i32) -> Vec<u8> {
        let mut v = vec![0xE8];
        v.extend_from_slice(&rel.to_le_bytes());
        v
    }

    /// `ret`.
    pub fn ret() -> Vec<u8> {
        vec![0xC3]
    }

    /// `leave`.
    pub fn leave() -> Vec<u8> {
        vec![0xC9]
    }

    /// `nop`.
    pub fn nop() -> Vec<u8> {
        vec![0x90]
    }

    /// `inc r32`.
    pub fn inc_r(r: u8) -> Vec<u8> {
        vec![0x40 + (r & 7)]
    }

    /// `dec r32`.
    pub fn dec_r(r: u8) -> Vec<u8> {
        vec![0x48 + (r & 7)]
    }

    /// `imul dst, src` (`0F AF /r`).
    pub fn imul_rr(dst: u8, src: u8) -> Vec<u8> {
        vec![0x0F, 0xAF, modrm(0b11, dst, src)]
    }

    /// `movzx dst, src8` (`0F B6 /r`).
    pub fn movzx_rr8(dst: u8, src: u8) -> Vec<u8> {
        vec![0x0F, 0xB6, modrm(0b11, dst, src)]
    }

    /// `shl r32, imm8` (`C1 /4`).
    pub fn shl_r_imm8(r: u8, imm: u8) -> Vec<u8> {
        vec![0xC1, modrm(0b11, 4, r), imm]
    }

    /// `lea dst, [base + disp8]`.
    pub fn lea(dst: u8, base: u8, disp: i8) -> Vec<u8> {
        let mut v = vec![0x8D];
        mem_disp8(dst, base, &mut v);
        v.push(disp as u8);
        v
    }

    /// `cmp r32, r32`.
    pub fn cmp_rr(a: u8, b: u8) -> Vec<u8> {
        alu_rr(Alu::Cmp, a, b)
    }

    /// `setcc r8` (`0F 9x /0`).
    pub fn setcc(cc: Cc, r: u8) -> Vec<u8> {
        vec![0x0F, 0x90 + cc as u8, modrm(0b11, 0, r)]
    }
}

#[cfg(test)]
mod tests {
    use super::asm::{self, reg, Alu, Cc};
    use super::*;

    fn layout_of(bytes: &[u8]) -> InstructionLayout {
        decode_layout(bytes).unwrap()
    }

    #[test]
    fn simple_lengths() {
        assert_eq!(layout_of(&asm::nop()).total_len(), 1);
        assert_eq!(layout_of(&asm::ret()).total_len(), 1);
        assert_eq!(layout_of(&asm::push_r(reg::EBP)).total_len(), 1);
        assert_eq!(layout_of(&asm::mov_r_imm(reg::EAX, 42)).total_len(), 5);
        assert_eq!(layout_of(&asm::mov_rr(reg::EAX, reg::EBX)).total_len(), 2);
        assert_eq!(layout_of(&asm::call_rel32(-100)).total_len(), 5);
        assert_eq!(layout_of(&asm::jcc_rel8(Cc::Ne, 4)).total_len(), 2);
        assert_eq!(layout_of(&asm::jcc_rel32(Cc::E, 1000)).total_len(), 6);
    }

    #[test]
    fn modrm_addressing_lengths() {
        // mov eax, [ebp - 4]: opcode + modrm + disp8 = 3.
        let l = layout_of(&asm::mov_load(reg::EAX, reg::EBP, -4));
        assert_eq!((l.modrm_len, l.sib_len, l.disp_len), (1, 1 - 1, 1));
        assert_eq!(l.total_len(), 3);
        // mov eax, [esp + 8] needs a SIB byte: 4 total.
        let l = layout_of(&asm::mov_load(reg::EAX, reg::ESP, 8));
        assert_eq!((l.modrm_len, l.sib_len, l.disp_len), (1, 1, 1));
        assert_eq!(l.total_len(), 4);
    }

    #[test]
    fn disp32_forms() {
        // mod=00 rm=101: [disp32].
        let l = layout_of(&[0x8B, 0x05, 1, 2, 3, 4]);
        assert_eq!(l.disp_len, 4);
        assert_eq!(l.total_len(), 6);
        // mod=00 rm=100 with SIB base=101: [index*scale + disp32].
        let l = layout_of(&[0x8B, 0x04, 0x8D, 1, 2, 3, 4]);
        assert_eq!((l.sib_len, l.disp_len), (1, 4));
        assert_eq!(l.total_len(), 7);
    }

    #[test]
    fn operand_size_prefix_shrinks_immediates() {
        // 66 B8 imm16: mov ax, imm16 — 4 bytes.
        let l = layout_of(&[0x66, 0xB8, 0x34, 0x12]);
        assert_eq!(l.prefix_len, 1);
        assert_eq!(l.imm_len, 2);
        assert_eq!(l.total_len(), 4);
    }

    #[test]
    fn group3_immediates_depend_on_reg_field() {
        // F7 /0 (test rm32, imm32): has imm.
        let l = layout_of(&[0xF7, 0xC0, 1, 2, 3, 4]);
        assert_eq!(l.imm_len, 4);
        // F7 /3 (neg rm32): no imm.
        let l = layout_of(&[0xF7, 0xD8]);
        assert_eq!(l.imm_len, 0);
        assert_eq!(l.total_len(), 2);
    }

    #[test]
    fn unknown_and_truncated_errors() {
        assert!(matches!(
            decode_layout(&[0x0F, 0x06]),
            Err(DecodeLayoutError::UnknownOpcode { opcode: 0x0F, second: Some(0x06) })
        ));
        assert_eq!(decode_layout(&[]).unwrap_err(), DecodeLayoutError::Truncated);
        assert_eq!(decode_layout(&[0xB8, 1, 2]).unwrap_err(), DecodeLayoutError::Truncated);
        assert_eq!(
            decode_layout(&[0x67, 0x8B, 0x05]).unwrap_err(),
            DecodeLayoutError::UnsupportedAddressSize
        );
    }

    #[test]
    fn stream_split_round_trips_a_function() {
        let mut text = Vec::new();
        text.extend(asm::push_r(reg::EBP));
        text.extend(asm::mov_rr(reg::EBP, reg::ESP));
        text.extend(asm::mov_load(reg::EAX, reg::EBP, 8));
        text.extend(asm::alu_r_imm8(Alu::Add, reg::EAX, 1));
        text.extend(asm::cmp_rr(reg::EAX, reg::ECX));
        text.extend(asm::jcc_rel8(Cc::L, -9));
        text.extend(asm::imul_rr(reg::EAX, reg::ECX));
        text.extend(asm::mov_store(reg::EBP, -4, reg::EAX));
        text.extend(asm::leave());
        text.extend(asm::ret());

        let split = split_streams(&text).unwrap();
        assert_eq!(split.total_len(), text.len());
        assert_eq!(split.reassemble(), text);
        assert_eq!(split.layouts.len(), 10);
    }

    #[test]
    fn stream_partition_is_exact() {
        let mut text = Vec::new();
        text.extend(asm::mov_r_imm(reg::ESI, 0xDEADBEEF));
        text.extend(asm::mov_load(reg::EDI, reg::ESP, 16));
        text.extend(asm::setcc(Cc::G, reg::EAX));
        let split = split_streams(&text).unwrap();
        // mov_r_imm: 1 opcode + 4 imm; mov_load(esp): 1 + 2 modrm/sib + 1 disp;
        // setcc: 2 opcode + 1 modrm.
        assert_eq!(split.opcode.len(), 1 + 1 + 2);
        assert_eq!(split.modrm_sib.len(), 2 + 1);
        assert_eq!(split.imm_disp.len(), (4 + 1));
    }

    #[test]
    fn split_reports_error_offset() {
        let mut text = asm::nop();
        text.push(0x0F);
        text.push(0x06); // unsupported two-byte opcode
        let (offset, _) = split_streams(&text).unwrap_err();
        assert_eq!(offset, 1);
    }

    #[test]
    fn every_assembler_output_is_decodable() {
        let cases: Vec<Vec<u8>> = vec![
            asm::mov_r_imm(reg::EDX, 7),
            asm::mov_r16_imm16(reg::EAX, 0x1234),
            asm::add_r16_imm16(reg::ECX, 0x0100),
            asm::mov_rr(reg::EBX, reg::ECX),
            asm::mov_load(reg::EAX, reg::EBP, -12),
            asm::mov_store(reg::ESP, 4, reg::ESI),
            asm::push_r(reg::EDI),
            asm::pop_r(reg::EDI),
            asm::push_imm8(-1),
            asm::alu_rr(Alu::Sub, reg::EAX, reg::EBX),
            asm::alu_r_imm8(Alu::And, reg::ECX, 0x0F),
            asm::alu_r_imm32(Alu::Xor, reg::EDX, 0x12345678),
            asm::test_rr(reg::EAX, reg::EAX),
            asm::jcc_rel8(Cc::E, 2),
            asm::jcc_rel32(Cc::Ns, -64),
            asm::jmp_rel8(5),
            asm::jmp_rel32(1024),
            asm::call_rel32(-2048),
            asm::ret(),
            asm::leave(),
            asm::nop(),
            asm::inc_r(reg::EAX),
            asm::dec_r(reg::EBX),
            asm::imul_rr(reg::ESI, reg::EDI),
            asm::movzx_rr8(reg::EAX, reg::ECX),
            asm::shl_r_imm8(reg::EDX, 3),
            asm::lea(reg::EAX, reg::EBP, -8),
            asm::setcc(Cc::Le, reg::ECX),
        ];
        for bytes in cases {
            let layout = decode_layout(&bytes).unwrap_or_else(|e| panic!("{bytes:02x?}: {e}"));
            assert_eq!(layout.total_len(), bytes.len(), "{bytes:02x?}");
        }
    }
}
