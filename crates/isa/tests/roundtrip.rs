//! Property tests: instruction models are lossless.

use cce_isa::mips::{self, ImmKind, Instruction, Operation};
use cce_isa::x86::{asm, split_streams};
use cce_rng::prop::prelude::*;

fn mips_instruction() -> impl Strategy<Value = Instruction> {
    (0u8..Operation::COUNT as u8, prop::collection::vec(0u8..32, 4), any::<u16>(), 0u32..1 << 26)
        .prop_map(|(id, regs, imm16, imm26)| {
            let op = Operation::from_id(id);
            let spec = op.operand_spec();
            let regs = &regs[..spec.reg_fields.len()];
            let imm16 = matches!(spec.imm, ImmKind::Imm16).then_some(imm16);
            let imm26 = matches!(spec.imm, ImmKind::Imm26).then_some(imm26);
            Instruction::assemble(op, regs, imm16, imm26)
        })
}

fn x86_instruction() -> impl Strategy<Value = Vec<u8>> {
    let r = 0u8..8;
    let r2 = 0u8..8;
    let alu = prop_oneof![
        Just(asm::Alu::Add),
        Just(asm::Alu::Sub),
        Just(asm::Alu::And),
        Just(asm::Alu::Or),
        Just(asm::Alu::Xor),
        Just(asm::Alu::Cmp),
    ];
    let cc = prop_oneof![
        Just(asm::Cc::E),
        Just(asm::Cc::Ne),
        Just(asm::Cc::L),
        Just(asm::Cc::Ge),
        Just(asm::Cc::G),
        Just(asm::Cc::Le),
    ];
    prop_oneof![
        (r.clone(), any::<u32>()).prop_map(|(a, i)| asm::mov_r_imm(a, i)),
        (r.clone(), r2.clone()).prop_map(|(a, b)| asm::mov_rr(a, b)),
        (r.clone(), r2.clone(), any::<i8>()).prop_map(|(a, b, d)| asm::mov_load(a, b, d)),
        (r.clone(), any::<i8>(), r2.clone()).prop_map(|(a, d, b)| asm::mov_store(a, d, b)),
        r.clone().prop_map(asm::push_r),
        r.clone().prop_map(asm::pop_r),
        (alu.clone(), r.clone(), r2.clone()).prop_map(|(op, a, b)| asm::alu_rr(op, a, b)),
        (alu.clone(), r.clone(), any::<i8>()).prop_map(|(op, a, i)| asm::alu_r_imm8(op, a, i)),
        (alu, r.clone(), any::<u32>()).prop_map(|(op, a, i)| asm::alu_r_imm32(op, a, i)),
        (cc.clone(), any::<i8>()).prop_map(|(c, d)| asm::jcc_rel8(c, d)),
        (cc.clone(), any::<i32>()).prop_map(|(c, d)| asm::jcc_rel32(c, d)),
        (cc, r.clone()).prop_map(|(c, a)| asm::setcc(c, a)),
        any::<i32>().prop_map(asm::call_rel32),
        any::<i32>().prop_map(asm::jmp_rel32),
        Just(asm::ret()),
        Just(asm::leave()),
        Just(asm::nop()),
        r.clone().prop_map(asm::inc_r),
        r.clone().prop_map(asm::dec_r),
        (r.clone(), r2.clone()).prop_map(|(a, b)| asm::imul_rr(a, b)),
        (r.clone(), r2.clone()).prop_map(|(a, b)| asm::movzx_rr8(a, b)),
        (r.clone(), 0u8..32).prop_map(|(a, s)| asm::shl_r_imm8(a, s)),
        (r, 0u8..8, any::<i8>()).prop_map(|(a, b, d)| asm::lea(a, b, d)),
    ]
}

proptest! {
    #[test]
    fn mips_encode_decode_round_trips(insn in mips_instruction()) {
        let word = insn.encode();
        prop_assert_eq!(Instruction::decode(word).unwrap(), insn);
    }

    #[test]
    fn mips_field_extraction_reassembles(insns in prop::collection::vec(mips_instruction(), 1..64)) {
        // Extract SADC streams instruction by instruction and reassemble.
        for insn in insns {
            let rebuilt = Instruction::assemble(
                insn.operation(),
                &insn.register_fields(),
                insn.imm16(),
                insn.imm26(),
            );
            prop_assert_eq!(rebuilt, insn);
        }
    }

    #[test]
    fn mips_text_round_trips(insns in prop::collection::vec(mips_instruction(), 0..128)) {
        let bytes = mips::encode_text(&insns);
        prop_assert_eq!(mips::decode_text(&bytes).unwrap(), insns);
    }

    #[test]
    fn mips_decoder_is_total(word in any::<u32>()) {
        // Must never panic; on success, re-encoding gives the word back.
        if let Ok(insn) = Instruction::decode(word) {
            prop_assert_eq!(insn.encode(), word);
        }
    }

    #[test]
    fn x86_streams_round_trip(insns in prop::collection::vec(x86_instruction(), 0..128)) {
        let text: Vec<u8> = insns.concat();
        let split = split_streams(&text).unwrap();
        prop_assert_eq!(split.layouts.len(), insns.len());
        prop_assert_eq!(split.total_len(), text.len());
        prop_assert_eq!(split.reassemble(), text);
    }

    #[test]
    fn x86_length_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..32)) {
        let _ = cce_isa::x86::decode_layout(&bytes);
    }
}

proptest! {
    #[test]
    fn progressive_layout_matches_decode_layout(insns in prop::collection::vec(x86_instruction(), 1..64)) {
        use cce_isa::x86::{decode_layout, progressive_layout, LayoutProgress};
        for bytes in insns {
            let full = decode_layout(&bytes).unwrap();
            let head = full.opcode_stream_len();
            let mut modrm = None;
            let mut sib = None;
            let mut cursor = head;
            let layout = loop {
                match progressive_layout(&bytes[..head], modrm, sib).unwrap() {
                    LayoutProgress::NeedModrm => {
                        modrm = Some(bytes[cursor]);
                        cursor += 1;
                    }
                    LayoutProgress::NeedSib => {
                        sib = Some(bytes[cursor]);
                        cursor += 1;
                    }
                    LayoutProgress::Complete(layout) => break layout,
                }
            };
            prop_assert_eq!(layout, full);
        }
    }
}
