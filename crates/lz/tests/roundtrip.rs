//! Property tests: both file-oriented baselines are lossless on arbitrary
//! byte strings, including adversarial repetition structures.

use cce_lz::{Gzip, Lzw};
use cce_rng::prop::prelude::*;

fn structured_bytes() -> impl Strategy<Value = Vec<u8>> {
    // Mix of raw noise and repeated motifs, the latter being what LZ coders
    // actually face in program text.
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..2048),
        (prop::collection::vec(any::<u8>(), 1..32), 1usize..200).prop_map(|(motif, reps)| {
            motif.iter().copied().cycle().take(motif.len() * reps).collect()
        }),
        (any::<u8>(), 0usize..5000).prop_map(|(b, n)| vec![b; n]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lzw_round_trips(data in structured_bytes()) {
        let codec = Lzw::new();
        let compressed = codec.compress(&data);
        prop_assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn lzw_small_dictionary_round_trips(data in structured_bytes()) {
        let codec = Lzw::with_max_bits(10);
        let compressed = codec.compress(&data);
        prop_assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn gzip_round_trips(data in structured_bytes()) {
        let codec = Gzip::new();
        let compressed = codec.compress(&data);
        prop_assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn gzip_decoder_never_panics_on_noise(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Gzip::new().decompress(&data);
    }

    #[test]
    fn lzw_decoder_never_panics_on_noise(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Lzw::new().decompress(&data);
    }

    #[test]
    fn gzip_beats_lzw_on_highly_repetitive_input(
        motif in prop::collection::vec(any::<u8>(), 8..24),
        reps in 200usize..400,
    ) {
        let data: Vec<u8> = motif.iter().copied().cycle().take(motif.len() * reps).collect();
        let gz = Gzip::new().compress(&data).len();
        let lz = Lzw::new().compress(&data).len();
        // gzip's back-references collapse the repetition far harder than
        // LZW's incremental dictionary — the relationship the paper's
        // figures rely on for large benchmarks.
        prop_assert!(gz <= lz + 64, "gzip {gz} vs lzw {lz}");
    }
}
