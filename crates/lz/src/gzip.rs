//! LZ77 + dynamic Huffman compressor in the style of `gzip(1)`.
//!
//! The compressor finds back-references over a 32 KiB sliding window with
//! hash chains and one-step lazy matching, then entropy-codes the token
//! stream with canonical Huffman tables over the DEFLATE literal/length and
//! distance alphabets.  The container is private to this crate (original
//! length + the two code-length tables + the coded tokens) — what matters
//! for the paper's figures is the *size*, which tracks real gzip closely,
//! and honesty, which the included decoder guarantees.

use cce_bitstream::{BitReader, BitWriter, EndOfStreamError};
use cce_huffman::{CodeBook, DecodeSymbolError};
use std::error::Error;
use std::fmt;

const WINDOW: usize = 32 * 1024;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const MAX_CHAIN: usize = 128;
const HASH_BITS: u32 = 15;
const END_OF_BLOCK: u16 = 256;

/// DEFLATE length code bases (symbols 257..285 map to these).
const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LENGTH_EXTRA: [u8; 29] =
    [0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0];
/// DEFLATE distance code bases.
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// Errors from [`Gzip::decompress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InflateError {
    /// The stream ended early.
    Truncated,
    /// A Huffman codeword or code-length table was invalid.
    BadCode,
    /// A back-reference pointed before the start of the output.
    BadDistance {
        /// The offending distance.
        distance: usize,
        /// Output length when it was applied.
        produced: usize,
    },
    /// The token stream produced more bytes than the header declared.
    OutputOverrun {
        /// Bytes produced when the overrun was detected.
        produced: usize,
        /// The length the header declared.
        declared: usize,
    },
}

impl fmt::Display for InflateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "compressed stream truncated"),
            Self::BadCode => write!(f, "invalid huffman code in stream"),
            Self::BadDistance { distance, produced } => {
                write!(f, "distance {distance} exceeds produced output {produced}")
            }
            Self::OutputOverrun { produced, declared } => {
                write!(f, "token stream produced {produced} bytes but header declared {declared}")
            }
        }
    }
}

impl Error for InflateError {}

impl From<EndOfStreamError> for InflateError {
    fn from(_: EndOfStreamError) -> Self {
        Self::Truncated
    }
}

impl From<DecodeSymbolError> for InflateError {
    fn from(e: DecodeSymbolError) -> Self {
        match e {
            DecodeSymbolError::EndOfStream(_) => Self::Truncated,
            DecodeSymbolError::InvalidCodeword => Self::BadCode,
        }
    }
}

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Token {
    Literal(u8),
    Match { len: u16, dist: u16 },
}

/// `gzip(1)`-style codec: LZ77 tokens + dynamic canonical Huffman.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gzip {
    _private: (),
}

impl Gzip {
    /// Creates the codec (stateless; one value can compress many files).
    pub fn new() -> Self {
        Self::default()
    }

    /// Compresses `data` as a single dynamic-Huffman block.
    pub fn compress(&self, data: &[u8]) -> Vec<u8> {
        let _span = crate::obs::GZIP_COMPRESS_SPAN.time();
        let tokens = tokenize(data);
        let matches = tokens.iter().filter(|t| matches!(t, Token::Match { .. })).count() as u64;
        crate::obs::GZIP_MATCHES.add(matches);
        crate::obs::GZIP_LITERALS.add(tokens.len() as u64 - matches);

        // Gather alphabet statistics.
        let mut lit_freq = [0u64; 286];
        let mut dist_freq = [0u64; 30];
        lit_freq[usize::from(END_OF_BLOCK)] = 1;
        for t in &tokens {
            match *t {
                Token::Literal(b) => lit_freq[usize::from(b)] += 1,
                Token::Match { len, dist } => {
                    lit_freq[257 + length_symbol(len)] += 1;
                    dist_freq[dist_symbol(dist)] += 1;
                }
            }
        }
        let lit_book = CodeBook::from_frequencies(&lit_freq, 15).expect("EOB guarantees a symbol");
        let dist_book = CodeBook::from_frequencies(&dist_freq, 15).ok();

        let mut w = BitWriter::new();
        w.write_bits(data.len() as u32, 32);
        for &l in lit_book.lengths() {
            w.write_bits(u32::from(l), 4); // max length 15 fits in 4 bits
        }
        match &dist_book {
            Some(book) => {
                for &l in book.lengths() {
                    w.write_bits(u32::from(l), 4);
                }
            }
            None => {
                for _ in 0..30 {
                    w.write_bits(0, 4);
                }
            }
        }

        for t in &tokens {
            match *t {
                Token::Literal(b) => lit_book.encode(&mut w, u16::from(b)),
                Token::Match { len, dist } => {
                    let ls = length_symbol(len);
                    lit_book.encode(&mut w, (257 + ls) as u16);
                    let extra = LENGTH_EXTRA[ls];
                    if extra > 0 {
                        w.write_bits(u32::from(len - LENGTH_BASE[ls]), u32::from(extra));
                    }
                    let ds = dist_symbol(dist);
                    dist_book
                        .as_ref()
                        .expect("matches imply a distance book")
                        .encode(&mut w, ds as u16);
                    let extra = DIST_EXTRA[ds];
                    if extra > 0 {
                        w.write_bits(u32::from(dist - DIST_BASE[ds]), u32::from(extra));
                    }
                }
            }
        }
        lit_book.encode(&mut w, END_OF_BLOCK);
        w.into_bytes()
    }

    /// Decompresses a stream produced by [`Gzip::compress`].
    ///
    /// # Errors
    ///
    /// Returns [`InflateError`] on truncation, invalid codes, or distances
    /// reaching before the start of the output.
    pub fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, InflateError> {
        let _span = crate::obs::GZIP_DECOMPRESS_SPAN.time();
        let mut r = BitReader::new(data);
        let original_len = r.read_bits(32)? as usize;

        let mut lit_lengths = vec![0u8; 286];
        for l in lit_lengths.iter_mut() {
            *l = r.read_bits(4)? as u8;
        }
        let lit_book = CodeBook::from_lengths(lit_lengths).map_err(|_| InflateError::BadCode)?;

        let mut dist_lengths = vec![0u8; 30];
        for l in dist_lengths.iter_mut() {
            *l = r.read_bits(4)? as u8;
        }
        let dist_book = CodeBook::from_lengths(dist_lengths).ok();

        // The declared length is attacker-controlled: never trust it for the
        // allocation (cap the preallocation, grow organically past it) and
        // never let the token stream exceed it (typed overrun error instead
        // of unbounded growth).
        let mut out = Vec::with_capacity(original_len.min(1 << 20));
        loop {
            if out.len() > original_len {
                return Err(InflateError::OutputOverrun {
                    produced: out.len(),
                    declared: original_len,
                });
            }
            let sym = lit_book.decode(&mut r)?;
            match sym {
                0..=255 => out.push(sym as u8),
                END_OF_BLOCK => break,
                257..=285 => {
                    let ls = usize::from(sym) - 257;
                    let mut len = usize::from(LENGTH_BASE[ls]);
                    len += r.read_bits(u32::from(LENGTH_EXTRA[ls]))? as usize;
                    let ds = usize::from(
                        dist_book.as_ref().ok_or(InflateError::BadCode)?.decode(&mut r)?,
                    );
                    if ds >= 30 {
                        return Err(InflateError::BadCode);
                    }
                    let mut dist = usize::from(DIST_BASE[ds]);
                    dist += r.read_bits(u32::from(DIST_EXTRA[ds]))? as usize;
                    if dist > out.len() {
                        return Err(InflateError::BadDistance {
                            distance: dist,
                            produced: out.len(),
                        });
                    }
                    // Overlapping copies are the point of LZ77.
                    let start = out.len() - dist;
                    for i in 0..len {
                        let b = out[start + i];
                        out.push(b);
                    }
                }
                _ => return Err(InflateError::BadCode),
            }
        }
        if out.len() != original_len {
            return Err(InflateError::Truncated);
        }
        Ok(out)
    }
}

fn length_symbol(len: u16) -> usize {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&usize::from(len)));
    // Last base whose value does not exceed len.
    LENGTH_BASE.iter().rposition(|&b| b <= len).expect("len >= 3")
}

fn dist_symbol(dist: u16) -> usize {
    debug_assert!(dist >= 1);
    DIST_BASE.iter().rposition(|&b| b <= dist).expect("dist >= 1")
}

fn hash3(data: &[u8], i: usize) -> usize {
    let v = u32::from(data[i]) << 16 | u32::from(data[i + 1]) << 8 | u32::from(data[i + 2]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Longest match at `pos` against `candidate`, capped at `MAX_MATCH`.
fn match_length(data: &[u8], candidate: usize, pos: usize) -> usize {
    let limit = (data.len() - pos).min(MAX_MATCH);
    let mut n = 0;
    while n < limit && data[candidate + n] == data[pos + n] {
        n += 1;
    }
    n
}

/// Greedy-with-lazy-evaluation LZ77 tokenizer (zlib's strategy).
fn tokenize(data: &[u8]) -> Vec<Token> {
    let mut tokens = Vec::new();
    if data.len() < MIN_MATCH {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; data.len()];

    let find_match = |head: &[usize], prev: &[usize], pos: usize, data: &[u8]| -> (usize, usize) {
        if pos + MIN_MATCH > data.len() {
            return (0, 0);
        }
        let mut best_len = 0;
        let mut best_dist = 0;
        let mut candidate = head[hash3(data, pos)];
        let mut chain = 0;
        while candidate != usize::MAX && chain < MAX_CHAIN {
            if pos - candidate > WINDOW {
                break;
            }
            let len = match_length(data, candidate, pos);
            if len > best_len {
                best_len = len;
                best_dist = pos - candidate;
                if len >= MAX_MATCH {
                    break;
                }
            }
            candidate = prev[candidate];
            chain += 1;
        }
        (best_len, best_dist)
    };

    let insert = |head: &mut [usize], prev: &mut [usize], pos: usize, data: &[u8]| {
        if pos + MIN_MATCH <= data.len() {
            let h = hash3(data, pos);
            prev[pos] = head[h];
            head[h] = pos;
        }
    };

    let mut i = 0;
    while i < data.len() {
        let (len, dist) = find_match(&head, &prev, i, data);
        if len >= MIN_MATCH {
            // Lazy step: would deferring one byte give a longer match?
            insert(&mut head, &mut prev, i, data);
            let (next_len, _) =
                if i + 1 < data.len() { find_match(&head, &prev, i + 1, data) } else { (0, 0) };
            if next_len > len {
                tokens.push(Token::Literal(data[i]));
                i += 1;
                continue;
            }
            tokens.push(Token::Match { len: len as u16, dist: dist as u16 });
            for k in 1..len {
                insert(&mut head, &mut prev, i + k, data);
            }
            i += len;
        } else {
            tokens.push(Token::Literal(data[i]));
            insert(&mut head, &mut prev, i, data);
            i += 1;
        }
    }
    tokens
}

impl cce_codec::FileCodec for Gzip {
    fn name(&self) -> &'static str {
        "gzip"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        Self::compress(self, data)
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, cce_codec::CodecError> {
        Self::decompress(self, data).map_err(|e| cce_codec::CodecError::corrupt("gzip", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> usize {
        let gz = Gzip::new();
        let compressed = gz.compress(data);
        assert_eq!(gz.decompress(&compressed).unwrap(), data);
        compressed.len()
    }

    #[test]
    fn empty_input() {
        round_trip(&[]);
    }

    #[test]
    fn short_inputs() {
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"abc");
    }

    #[test]
    fn overlapping_match_run() {
        // "aaaa..." decodes via self-overlapping copy (dist 1, long len).
        round_trip(&vec![b'z'; 5000]);
    }

    #[test]
    fn text_with_repeats_compresses_well() {
        let data: Vec<u8> = b"lw $t0, 4($sp); addiu $sp, $sp, -8; sw $ra, 0($sp); "
            .iter()
            .copied()
            .cycle()
            .take(20_000)
            .collect();
        let len = round_trip(&data);
        assert!(len < data.len() / 10, "got {len}");
    }

    #[test]
    fn max_length_matches_are_emitted() {
        // A long literal run produces len-258 matches (symbol 285, 0 extra).
        let data = vec![7u8; MAX_MATCH * 4 + 10];
        let tokens = tokenize(&data);
        assert!(tokens.iter().any(|t| matches!(t, Token::Match { len: 258, .. })));
        round_trip(&data);
    }

    #[test]
    fn length_symbol_boundaries() {
        assert_eq!(length_symbol(3), 0);
        assert_eq!(length_symbol(10), 7);
        assert_eq!(length_symbol(11), 8);
        assert_eq!(length_symbol(12), 8);
        assert_eq!(length_symbol(257), 27);
        assert_eq!(length_symbol(258), 28);
    }

    #[test]
    fn dist_symbol_boundaries() {
        assert_eq!(dist_symbol(1), 0);
        assert_eq!(dist_symbol(4), 3);
        assert_eq!(dist_symbol(5), 4);
        assert_eq!(dist_symbol(6), 4);
        assert_eq!(dist_symbol(7), 5);
        assert_eq!(dist_symbol(24577), 29);
        assert_eq!(dist_symbol(32768), 29);
    }

    #[test]
    fn far_matches_use_the_whole_window() {
        // Pattern repeats at distance just under the window size.
        let unit: Vec<u8> = (0..WINDOW - 100).map(|i| (i % 251) as u8).collect();
        let mut data = unit.clone();
        data.extend_from_slice(&unit);
        let len = round_trip(&data);
        assert!(len < data.len() / 2 + 4096, "got {len}");
    }

    #[test]
    fn incompressible_noise_round_trips() {
        let data: Vec<u8> =
            (0..8192u32).map(|i| (i.wrapping_mul(0x9E3779B9) >> 11) as u8).collect();
        round_trip(&data);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let gz = Gzip::new();
        let compressed = gz.compress(b"hello hello hello hello");
        assert_eq!(
            gz.decompress(&compressed[..compressed.len() - 1]).unwrap_err(),
            InflateError::Truncated
        );
    }

    #[test]
    fn tampered_length_field_is_rejected_without_allocating() {
        let gz = Gzip::new();
        let mut compressed = gz.compress(b"the quick brown fox jumps over the lazy dog");
        // The first 32 bits are the declared original length (bit-packed).
        // Claiming 4 GiB must not preallocate 4 GiB: decode runs to the
        // end-of-block symbol and reports the mismatch.
        compressed[0] = 0xFF;
        compressed[1] = 0xFF;
        compressed[2] = 0xFF;
        compressed[3] = 0xFF;
        assert_eq!(gz.decompress(&compressed).unwrap_err(), InflateError::Truncated);
        // Claiming *less* than the stream produces is an overrun.
        compressed[0] = 0;
        compressed[1] = 0;
        compressed[2] = 0;
        compressed[3] = 2;
        assert!(matches!(
            gz.decompress(&compressed).unwrap_err(),
            InflateError::OutputOverrun { declared: 2, .. }
        ));
    }

    #[test]
    fn garbage_is_rejected_not_panicking() {
        let gz = Gzip::new();
        for seed in 0..20u8 {
            let junk: Vec<u8> =
                (0..200).map(|i| (i as u8).wrapping_mul(seed).wrapping_add(seed)).collect();
            let _ = gz.decompress(&junk); // must not panic
        }
    }
}
