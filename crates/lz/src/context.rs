//! Adaptive context-model compressor (the PPM/DMC class).
//!
//! The paper's §1 rules this family out for compressed-code memories:
//! finite-context modelling (PPM, DMC, WORD) "seem[s] to achieve the best
//! performance.  However they require large amounts of memory both for
//! compression and decompression" — and, being adaptive, they cannot
//! restart at cache-block boundaries at all.  This module implements a
//! representative member so the claim is *measured*, not assumed: an
//! order-N binary context-mixing coder over the crate's range coder, with
//! an explicit, configurable model-memory budget.
//!
//! The coder is fully adaptive (no stored tables): encoder and decoder
//! update identical counts as they go, so decompression must start from
//! byte zero — exactly the property that disqualifies it from the
//! Wolfe/Chanin architecture.

use cce_arith::{BitDecoder, BitEncoder, Prob};
use std::error::Error;
use std::fmt;

/// Errors from [`ContextCoder::decompress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContextDecodeError {
    /// The stream header was missing or malformed.
    BadHeader,
}

impl fmt::Display for ContextDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadHeader => write!(f, "context-coded stream has a bad header"),
        }
    }
}

impl Error for ContextDecodeError {}

/// Configuration for [`ContextCoder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextCoderConfig {
    /// Bytes of preceding context hashed into the model (1–4; the paper's
    /// PPM comparisons use low orders too).
    pub order: usize,
    /// log2 of the adaptive-count table size.  The table is the model
    /// memory the paper objects to: `2^table_bits` entries × 4 bytes.
    pub table_bits: u32,
}

impl Default for ContextCoderConfig {
    fn default() -> Self {
        Self { order: 2, table_bits: 20 }
    }
}

impl ContextCoderConfig {
    /// Model memory in bytes (the decompressor must hold this too).
    pub fn model_bytes(&self) -> usize {
        (1usize << self.table_bits) * 4
    }
}

/// Order-N adaptive binary context coder.
///
/// # Examples
///
/// ```
/// use cce_lz::{ContextCoder, ContextCoderConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let coder = ContextCoder::new(ContextCoderConfig::default());
/// let data = b"abracadabra abracadabra abracadabra".to_vec();
/// let compressed = coder.compress(&data);
/// assert_eq!(coder.decompress(&compressed)?, data);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ContextCoder {
    config: ContextCoderConfig,
}

/// Adaptive zero/one counts for one context slot.
#[derive(Debug, Clone, Copy, Default)]
struct Counts {
    zeros: u16,
    ones: u16,
}

impl Counts {
    fn prob(&self) -> Prob {
        Prob::from_counts(u64::from(self.zeros), u64::from(self.ones))
    }

    fn update(&mut self, bit: bool) {
        if bit {
            self.ones = self.ones.saturating_add(4);
        } else {
            self.zeros = self.zeros.saturating_add(4);
        }
        // Halving on saturation keeps the estimator adaptive (recency
        // weighting), the standard trick in CM coders.
        if self.zeros >= u16::MAX - 8 || self.ones >= u16::MAX - 8 {
            self.zeros /= 2;
            self.ones /= 2;
        }
    }
}

/// Shared model walk: hash of (last `order` bytes, current bit prefix).
struct Model {
    table: Vec<Counts>,
    mask: usize,
    order: usize,
    history: u32,
}

impl Model {
    fn new(config: ContextCoderConfig) -> Self {
        Self {
            table: vec![Counts::default(); 1 << config.table_bits],
            mask: (1 << config.table_bits) - 1,
            order: config.order,
            history: 0,
        }
    }

    fn slot(&mut self, bit_prefix: u32) -> &mut Counts {
        let order_mask = if self.order >= 4 { u32::MAX } else { (1 << (8 * self.order)) - 1 };
        let key = u64::from(self.history & order_mask) << 9 | u64::from(bit_prefix);
        let hashed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16;
        &mut self.table[hashed as usize & self.mask]
    }

    fn push_byte(&mut self, byte: u8) {
        self.history = self.history << 8 | u32::from(byte);
    }
}

impl ContextCoder {
    /// Creates a coder.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= order <= 4` and `10 <= table_bits <= 26`.
    pub fn new(config: ContextCoderConfig) -> Self {
        assert!((1..=4).contains(&config.order), "order must be 1..=4");
        assert!((10..=26).contains(&config.table_bits), "table_bits must be 10..=26");
        Self { config }
    }

    /// The configuration (exposes the model-memory accounting).
    pub fn config(&self) -> ContextCoderConfig {
        self.config
    }

    /// Compresses `data` (whole-file; there is no random access by design).
    pub fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut model = Model::new(self.config);
        let mut encoder = BitEncoder::new();
        let mut out = (data.len() as u32).to_be_bytes().to_vec();
        for &byte in data {
            let mut prefix = 1u32; // sentinel bit marks the depth
            for i in (0..8).rev() {
                let bit = byte >> i & 1 == 1;
                let slot = model.slot(prefix);
                encoder.encode_bit(bit, slot.prob());
                slot.update(bit);
                prefix = prefix << 1 | u32::from(bit);
            }
            model.push_byte(byte);
        }
        out.extend(encoder.finish());
        out
    }

    /// Decompresses a stream produced by [`ContextCoder::compress`] with
    /// the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ContextDecodeError::BadHeader`] if the length header is
    /// missing.
    pub fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, ContextDecodeError> {
        if data.len() < 4 {
            return Err(ContextDecodeError::BadHeader);
        }
        let len = u32::from_be_bytes(data[..4].try_into().expect("4 bytes")) as usize;
        let mut model = Model::new(self.config);
        let mut decoder = BitDecoder::new(&data[4..]);
        // Cap the preallocation: a corrupt header must not force a huge
        // up-front allocation (the Vec still grows to the claimed length).
        let mut out = Vec::with_capacity(len.min(1 << 24));
        for _ in 0..len {
            let mut prefix = 1u32;
            for _ in 0..8 {
                let slot = model.slot(prefix);
                let prob = slot.prob();
                let bit = decoder.decode_bit(prob);
                slot.update(bit);
                prefix = prefix << 1 | u32::from(bit);
            }
            let byte = (prefix & 0xFF) as u8;
            model.push_byte(byte);
            out.push(byte);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> usize {
        let coder = ContextCoder::new(ContextCoderConfig::default());
        let compressed = coder.compress(data);
        assert_eq!(coder.decompress(&compressed).unwrap(), data);
        compressed.len()
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(round_trip(&[]), 4); // header only
        round_trip(b"x");
        round_trip(b"ab");
    }

    #[test]
    fn repetitive_text_compresses_hard() {
        let data: Vec<u8> =
            b"lw $t0, 4($sp); addiu $sp, $sp, -8; ".iter().copied().cycle().take(20_000).collect();
        let len = round_trip(&data);
        assert!(len < data.len() / 8, "got {len} bytes");
    }

    #[test]
    fn orders_are_all_lossless() {
        let data: Vec<u8> = (0..5000u32).map(|i| (i * 37 % 251) as u8).collect();
        for order in 1..=4 {
            let coder = ContextCoder::new(ContextCoderConfig { order, table_bits: 16 });
            let compressed = coder.compress(&data);
            assert_eq!(coder.decompress(&compressed).unwrap(), data, "order {order}");
        }
    }

    #[test]
    fn model_memory_accounting() {
        let config = ContextCoderConfig { order: 2, table_bits: 20 };
        assert_eq!(config.model_bytes(), 4 << 20);
    }

    #[test]
    fn mismatched_config_fails_round_trip() {
        let a = ContextCoder::new(ContextCoderConfig { order: 2, table_bits: 18 });
        let b = ContextCoder::new(ContextCoderConfig { order: 1, table_bits: 18 });
        let data: Vec<u8> = b"the quick brown fox".repeat(50);
        let compressed = a.compress(&data);
        // Decoding with a different model yields garbage (but no panic);
        // lengths match because the header carries the count.
        let wrong = b.decompress(&compressed).unwrap();
        assert_eq!(wrong.len(), data.len());
        assert_ne!(wrong, data);
    }

    #[test]
    fn bad_header_is_an_error() {
        let coder = ContextCoder::new(ContextCoderConfig::default());
        assert_eq!(coder.decompress(&[1, 2]).unwrap_err(), ContextDecodeError::BadHeader);
    }

    #[test]
    fn beats_order_zero_on_structured_data() {
        // Order-2 context should beat order-1 on code-like data.
        let data: Vec<u8> = (0..30_000u32)
            .flat_map(|i| {
                let op = [0x8Fu8, 0xAF, 0x27, 0x00][i as usize % 4];
                [op, 0xBD, (i % 64) as u8]
            })
            .collect();
        let len = |order| {
            ContextCoder::new(ContextCoderConfig { order, table_bits: 20 }).compress(&data).len()
        };
        assert!(len(2) < len(1), "order2 {} vs order1 {}", len(2), len(1));
    }
}
