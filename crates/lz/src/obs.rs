//! Preregistered metric handles for the file-oriented LZ baselines.

use cce_obs::{Counter, Desc, SpanStat};

/// Wall-clock time spent in gzip (deflate) compression.
pub static GZIP_COMPRESS_SPAN: SpanStat = SpanStat::new();
/// Wall-clock time spent in gzip (deflate) decompression.
pub static GZIP_DECOMPRESS_SPAN: SpanStat = SpanStat::new();
/// Literal tokens emitted by the gzip tokenizer.
pub static GZIP_LITERALS: Counter = Counter::new();
/// Back-reference (match) tokens emitted by the gzip tokenizer.
pub static GZIP_MATCHES: Counter = Counter::new();
/// Codes emitted by the LZW (compress(1)) encoder.
pub static LZW_CODES: Counter = Counter::new();
/// Dictionary-full clears emitted by the LZW encoder.
pub static LZW_CLEARS: Counter = Counter::new();

/// Descriptors for every metric this crate registers.
pub fn descriptors() -> [Desc; 6] {
    [
        Desc::span("lz.gzip.compress.span", "time in gzip compression", &GZIP_COMPRESS_SPAN),
        Desc::span("lz.gzip.decompress.span", "time in gzip decompression", &GZIP_DECOMPRESS_SPAN),
        Desc::counter("lz.gzip.literals", "literal tokens emitted by gzip", &GZIP_LITERALS),
        Desc::counter("lz.gzip.matches", "back-reference tokens emitted by gzip", &GZIP_MATCHES),
        Desc::counter("lz.lzw.codes", "codes emitted by the LZW encoder", &LZW_CODES),
        Desc::counter("lz.lzw.clears", "dictionary clears emitted by LZW", &LZW_CLEARS),
    ]
}
