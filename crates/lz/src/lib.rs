//! File-oriented dictionary compressors used as baselines.
//!
//! Figures 7 and 8 of the DAC'98 paper compare SAMC and SADC against UNIX
//! `compress` and `gzip`.  Neither baseline can actually be used in a
//! compressed-code memory system — both need sequential decompression from
//! the start of the file (the paper's motivating constraint) — but they
//! bound what file-oriented compression achieves on the same programs.
//!
//! * [`Lzw`] reimplements `compress(1)`: LZW with 9- to 16-bit codes and a
//!   block-mode clear code.
//! * [`Gzip`] reimplements the essence of `gzip(1)`: LZ77 over a 32 KiB
//!   window with lazy matching, entropy-coded with dynamic canonical
//!   Huffman tables over the DEFLATE length/distance alphabets.
//! * [`ContextCoder`] represents the PPM/DMC class the paper's §1 rules
//!   out — strongest compression, but adaptive (no random access) and
//!   with megabytes of model memory, both of which it makes measurable.
//!
//! Both are real, reversible codecs (decoders included), so the byte counts
//! entering the figures are honest.  [`Lzw`] and [`Gzip`] implement
//! [`cce_codec::FileCodec`], the workspace trait for whole-file baselines
//! that cannot offer per-block random access.
//!
//! # Examples
//!
//! ```
//! use cce_lz::{Gzip, Lzw};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = b"the quick brown fox jumps over the lazy dog. the quick brown fox.".to_vec();
//! let lzw = Lzw::new().compress(&data);
//! assert_eq!(Lzw::new().decompress(&lzw)?, data);
//!
//! let gz = Gzip::new().compress(&data);
//! assert_eq!(Gzip::new().decompress(&gz)?, data);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod gzip;
mod lzw;
pub mod obs;

pub use context::{ContextCoder, ContextCoderConfig, ContextDecodeError};
pub use gzip::{Gzip, InflateError};
pub use lzw::{Lzw, LzwDecodeError};
