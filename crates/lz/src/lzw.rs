//! LZW in the style of UNIX `compress(1)`.

use cce_bitstream::{BitReader, BitWriter};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// First code available for learned strings (256 = clear code).
const CLEAR: u32 = 256;
const FIRST_FREE: u32 = 257;
const MIN_BITS: u32 = 9;

/// Errors from [`Lzw::decompress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LzwDecodeError {
    /// The stream ended in the middle of a code.
    Truncated,
    /// A code referenced a dictionary entry that does not exist yet.
    InvalidCode(u32),
    /// Decoding produced more output than the caller's budget allows.
    OutputBudget {
        /// The caller-supplied cap that was exceeded.
        max_out: usize,
    },
}

impl fmt::Display for LzwDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "lzw stream truncated mid-code"),
            Self::InvalidCode(c) => write!(f, "lzw code {c} not in dictionary"),
            Self::OutputBudget { max_out } => {
                write!(f, "lzw output exceeds budget of {max_out} bytes")
            }
        }
    }
}

impl Error for LzwDecodeError {}

/// `compress(1)`-style LZW codec.
///
/// Codes grow from 9 to `max_bits` bits as the dictionary fills; when it is
/// full the compressor emits the clear code and starts over, which is how
/// block-mode `compress` adapts to changing statistics.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lzw {
    max_bits: u32,
}

impl Default for Lzw {
    fn default() -> Self {
        Self::new()
    }
}

impl Lzw {
    /// Codec with the classic 16-bit maximum code width.
    pub fn new() -> Self {
        Self { max_bits: 16 }
    }

    /// Codec with a custom maximum code width.
    ///
    /// # Panics
    ///
    /// Panics unless `9 <= max_bits <= 24`.
    pub fn with_max_bits(max_bits: u32) -> Self {
        assert!((MIN_BITS..=24).contains(&max_bits), "max_bits must be 9..=24");
        Self { max_bits }
    }

    /// Compresses `data`.
    ///
    /// The output begins with the 3-byte `compress(1)` header (magic plus a
    /// flags byte recording `max_bits` and block mode) so that size
    /// accounting matches the real tool.
    pub fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut w = BitWriter::new();
        // Header: magic 0x1F 0x9D, then block-mode flag | max bits.
        w.write_byte(0x1F);
        w.write_byte(0x9D);
        w.write_byte(0x80 | self.max_bits as u8);

        let mut dict: HashMap<(u32, u8), u32> = HashMap::new();
        let mut next_code = FIRST_FREE;
        let mut bits = MIN_BITS;
        let mut current: Option<u32> = None;
        // Batched per the overhead policy: flushed to crate::obs once per call.
        let mut codes = 0u64;
        let mut clears = 0u64;

        for &byte in data {
            let code = match current {
                None => u32::from(byte),
                Some(prefix) => {
                    if let Some(&found) = dict.get(&(prefix, byte)) {
                        found
                    } else {
                        w.write_bits(prefix, bits);
                        codes += 1;
                        if next_code < 1 << self.max_bits {
                            dict.insert((prefix, byte), next_code);
                            next_code += 1;
                            if next_code > (1 << bits) && bits < self.max_bits {
                                bits += 1;
                            }
                        } else {
                            // Dictionary full: clear and relearn.
                            w.write_bits(CLEAR, bits);
                            clears += 1;
                            dict.clear();
                            next_code = FIRST_FREE;
                            bits = MIN_BITS;
                        }
                        u32::from(byte)
                    }
                }
            };
            current = Some(code);
        }
        if let Some(code) = current {
            w.write_bits(code, bits);
            codes += 1;
        }
        crate::obs::LZW_CODES.add(codes);
        crate::obs::LZW_CLEARS.add(clears);
        w.into_bytes()
    }

    /// Decompresses a stream produced by [`Lzw::compress`].
    ///
    /// # Errors
    ///
    /// Returns [`LzwDecodeError`] on truncation or an out-of-range code
    /// (including a bad header).
    pub fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, LzwDecodeError> {
        self.decompress_bounded(data, usize::MAX)
    }

    /// Decompresses with a caller-supplied output budget.
    ///
    /// LZW's structure already bounds amplification — the `j`-th code can
    /// expand to at most `j` bytes, so output never exceeds
    /// `j * (j + 1) / 2` for `j` codes, valid or corrupt — but that
    /// quadratic bound is reachable, so an embedded refill engine (or a
    /// fuzz harness) with a known decompressed size should pass it here
    /// and get a typed [`LzwDecodeError::OutputBudget`] instead of a
    /// large allocation.
    ///
    /// # Errors
    ///
    /// Everything [`Lzw::decompress`] returns, plus
    /// [`LzwDecodeError::OutputBudget`] once the output would exceed
    /// `max_out` bytes.
    pub fn decompress_bounded(
        &self,
        data: &[u8],
        max_out: usize,
    ) -> Result<Vec<u8>, LzwDecodeError> {
        let mut r = BitReader::new(data);
        let magic0 = r.read_bits(8).map_err(|_| LzwDecodeError::Truncated)?;
        let magic1 = r.read_bits(8).map_err(|_| LzwDecodeError::Truncated)?;
        let flags = r.read_bits(8).map_err(|_| LzwDecodeError::Truncated)?;
        if magic0 != 0x1F || magic1 != 0x9D {
            return Err(LzwDecodeError::InvalidCode(magic0 << 8 | magic1));
        }
        let max_bits = flags & 0x1F;
        if !(MIN_BITS..=24).contains(&max_bits) {
            return Err(LzwDecodeError::InvalidCode(flags));
        }

        // Dictionary: entry -> (prefix code, final byte); first 256 implicit.
        let mut entries: Vec<(u32, u8)> = Vec::new();
        let mut bits = MIN_BITS;
        let mut out = Vec::new();
        let mut prev: Option<u32> = None;
        let mut prev_first_byte = 0u8;

        let expand = |entries: &Vec<(u32, u8)>,
                      mut code: u32,
                      out: &mut Vec<u8>|
         -> Result<u8, LzwDecodeError> {
            let start = out.len();
            loop {
                if code < 256 {
                    out.push(code as u8);
                    break;
                }
                let idx = (code - FIRST_FREE) as usize;
                let &(prefix, byte) = entries.get(idx).ok_or(LzwDecodeError::InvalidCode(code))?;
                out.push(byte);
                code = prefix;
            }
            out[start..].reverse();
            Ok(out[start])
        };

        loop {
            if r.remaining_bits() < bits as usize {
                break; // trailing padding
            }
            let code = r.read_bits(bits).expect("length checked");
            if code == CLEAR {
                entries.clear();
                bits = MIN_BITS;
                prev = None;
                continue;
            }
            let next_code = FIRST_FREE + entries.len() as u32;
            if let Some(p) = prev {
                if next_code < 1 << max_bits {
                    if code == next_code {
                        // KwKwK: entry being defined right now.
                        entries.push((p, prev_first_byte));
                    } else {
                        // Define from the decoded string's first byte below.
                        let first = first_byte(&entries, code)?;
                        entries.push((p, first));
                    }
                }
            }
            prev_first_byte = expand(&entries, code, &mut out)?;
            if out.len() > max_out {
                return Err(LzwDecodeError::OutputBudget { max_out });
            }
            prev = Some(code);
            let defined = FIRST_FREE + entries.len() as u32;
            if defined >= (1 << bits) && bits < max_bits {
                bits += 1;
            }
        }
        Ok(out)
    }
}

impl cce_codec::FileCodec for Lzw {
    fn name(&self) -> &'static str {
        "compress"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        Self::compress(self, data)
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, cce_codec::CodecError> {
        Self::decompress(self, data).map_err(|e| cce_codec::CodecError::corrupt("compress", e))
    }
}

/// First byte of the string a code expands to.
fn first_byte(entries: &[(u32, u8)], mut code: u32) -> Result<u8, LzwDecodeError> {
    loop {
        if code < 256 {
            return Ok(code as u8);
        }
        let idx = (code - FIRST_FREE) as usize;
        let &(prefix, _) = entries.get(idx).ok_or(LzwDecodeError::InvalidCode(code))?;
        code = prefix;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> usize {
        let codec = Lzw::new();
        let compressed = codec.compress(data);
        assert_eq!(codec.decompress(&compressed).unwrap(), data, "round trip");
        compressed.len()
    }

    #[test]
    fn empty_input() {
        let codec = Lzw::new();
        let compressed = codec.compress(&[]);
        assert_eq!(compressed.len(), 3); // header only
        assert_eq!(codec.decompress(&compressed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn single_byte() {
        round_trip(b"x");
    }

    #[test]
    fn classic_banana() {
        round_trip(b"TOBEORNOTTOBEORTOBEORNOT");
    }

    #[test]
    fn kwkwk_case() {
        // "aaa...": forces the code-defined-while-used path immediately.
        round_trip(&[b'a'; 100]);
    }

    #[test]
    fn repetitive_text_compresses() {
        let data: Vec<u8> =
            b"move r1, r2; add r3, r1, r4; ".iter().copied().cycle().take(10_000).collect();
        let len = round_trip(&data);
        assert!(len < data.len() / 4, "got {len} bytes");
    }

    #[test]
    fn incompressible_data_expands_gracefully() {
        let data: Vec<u8> =
            (0..4096u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        let len = round_trip(&data);
        // LZW on noise expands by at most 9/8 plus header.
        assert!(len <= data.len() * 9 / 8 + 16);
    }

    #[test]
    fn dictionary_clear_path_round_trips() {
        // Small max_bits forces the dictionary to fill and clear repeatedly.
        let codec = Lzw::with_max_bits(9);
        let data: Vec<u8> = (0..20_000u32).map(|i| (i * 37 % 251) as u8).collect();
        let compressed = codec.compress(&data);
        assert_eq!(codec.decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(Lzw::new().decompress(&[0, 0, 0, 0]).is_err());
    }

    #[test]
    fn truncated_header_is_rejected() {
        assert_eq!(Lzw::new().decompress(&[0x1F]).unwrap_err(), LzwDecodeError::Truncated);
    }

    #[test]
    fn all_byte_values_round_trip() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        round_trip(&data);
    }

    #[test]
    fn output_budget_is_enforced() {
        let codec = Lzw::new();
        let data = vec![b'a'; 4096];
        let compressed = codec.compress(&data);
        assert_eq!(codec.decompress_bounded(&compressed, 4096).unwrap(), data);
        assert_eq!(
            codec.decompress_bounded(&compressed, 100).unwrap_err(),
            LzwDecodeError::OutputBudget { max_out: 100 }
        );
    }
}
