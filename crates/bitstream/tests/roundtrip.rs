//! Property tests: anything written through `BitWriter` reads back through
//! `BitReader` verbatim, regardless of chunking.

use cce_bitstream::{BitReader, BitWriter};
use cce_rng::prop::prelude::*;

/// A single write operation, so sequences of mixed-width writes are covered.
#[derive(Debug, Clone)]
enum Op {
    Bit(bool),
    Bits { value: u32, count: u32 },
    Byte(u8),
    Align,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<bool>().prop_map(Op::Bit),
        (1u32..=32).prop_flat_map(|count| {
            let max = if count == 32 { u32::MAX } else { (1 << count) - 1 };
            (0..=max).prop_map(move |value| Op::Bits { value, count })
        }),
        any::<u8>().prop_map(Op::Byte),
        Just(Op::Align),
    ]
}

proptest! {
    #[test]
    fn mixed_writes_read_back(ops in prop::collection::vec(op_strategy(), 0..200)) {
        let mut w = BitWriter::new();
        for op in &ops {
            match *op {
                Op::Bit(b) => w.write_bit(b),
                Op::Bits { value, count } => w.write_bits(value, count),
                Op::Byte(b) => w.write_byte(b),
                Op::Align => w.align_to_byte(),
            }
        }
        let total_bits = w.bit_len();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);

        // Replay, tracking where alignment padding was inserted.
        let mut expected_pos = 0usize;
        for op in &ops {
            match *op {
                Op::Bit(b) => {
                    prop_assert_eq!(r.read_bit().unwrap(), b);
                    expected_pos += 1;
                }
                Op::Bits { value, count } => {
                    prop_assert_eq!(r.read_bits(count).unwrap(), value);
                    expected_pos += count as usize;
                }
                Op::Byte(b) => {
                    prop_assert_eq!(r.read_byte().unwrap(), b);
                    expected_pos += 8;
                }
                Op::Align => {
                    let pad = expected_pos.next_multiple_of(8) - expected_pos;
                    prop_assert_eq!(r.read_bits(pad as u32).unwrap(), 0);
                    expected_pos += pad;
                }
            }
            prop_assert_eq!(r.bit_position(), expected_pos);
        }
        prop_assert_eq!(expected_pos, total_bits);
    }

    #[test]
    fn random_bit_vectors_round_trip(bits in prop::collection::vec(any::<bool>(), 0..512)) {
        let mut w = BitWriter::new();
        for &b in &bits {
            w.write_bit(b);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &bits {
            prop_assert_eq!(r.read_bit().unwrap(), b);
        }
        // Only padding (zero bits) remains.
        prop_assert!(r.remaining_bits() < 8);
        while !r.is_exhausted() {
            prop_assert!(!r.read_bit().unwrap());
        }
    }

    #[test]
    fn at_bit_matches_sequential_read(bytes in prop::collection::vec(any::<u8>(), 1..64), skip in 0usize..512) {
        let skip = skip % (bytes.len() * 8);
        let mut seq = BitReader::new(&bytes);
        seq.read_bits((skip % 33) as u32).unwrap_or(0);
        // Position a fresh reader wherever the sequential one landed.
        let mut jumped = BitReader::at_bit(&bytes, seq.bit_position());
        while !seq.is_exhausted() {
            prop_assert_eq!(seq.read_bit().unwrap(), jumped.read_bit().unwrap());
        }
        prop_assert!(jumped.is_exhausted());
    }
}
