//! Bit-unpacking reader.

use crate::EndOfStreamError;

/// Reads bits most-significant-bit first from a borrowed byte slice.
///
/// The reader tracks its bit position so decoders can honour region
/// boundaries (e.g. stop exactly where a cache block's codewords end) and
/// report precise truncation positions.
///
/// # Examples
///
/// ```
/// use cce_bitstream::BitReader;
///
/// # fn main() -> Result<(), cce_bitstream::EndOfStreamError> {
/// let mut r = BitReader::new(&[0b1010_0000]);
/// assert_eq!(r.read_bits(3)?, 0b101);
/// assert_eq!(r.bit_position(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    bit_position: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`, positioned at bit 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, bit_position: 0 }
    }

    /// Creates a reader positioned `bit_offset` bits into `bytes`.
    ///
    /// This is how a random-access decoder jumps straight to the start of a
    /// compressed cache block recorded in the line address table.
    ///
    /// # Panics
    ///
    /// Panics if `bit_offset` lies beyond the end of `bytes`.
    pub fn at_bit(bytes: &'a [u8], bit_offset: usize) -> Self {
        assert!(
            bit_offset <= bytes.len() * 8,
            "bit offset {bit_offset} beyond stream of {} bits",
            bytes.len() * 8
        );
        Self { bytes, bit_position: bit_offset }
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`EndOfStreamError`] when the stream is exhausted.
    pub fn read_bit(&mut self) -> Result<bool, EndOfStreamError> {
        let byte_index = self.bit_position / 8;
        let byte = *self.bytes.get(byte_index).ok_or(EndOfStreamError::new(self.bit_position))?;
        let bit = byte >> (7 - self.bit_position % 8) & 1 == 1;
        self.bit_position += 1;
        Ok(bit)
    }

    /// Reads `count` bits into the low bits of a `u32`, first bit read being
    /// the most significant of the result.
    ///
    /// # Errors
    ///
    /// Returns [`EndOfStreamError`] if fewer than `count` bits remain; the
    /// reader position is left where the failed read began.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn read_bits(&mut self, count: u32) -> Result<u32, EndOfStreamError> {
        assert!(count <= 32, "cannot read more than 32 bits at once");
        if self.remaining_bits() < count as usize {
            return Err(EndOfStreamError::new(self.bit_position));
        }
        let mut value = 0u32;
        for _ in 0..count {
            value = value << 1 | u32::from(self.read_bit().expect("length checked"));
        }
        Ok(value)
    }

    /// Reads one whole byte (8 bits, not necessarily aligned).
    ///
    /// # Errors
    ///
    /// Returns [`EndOfStreamError`] if fewer than 8 bits remain.
    pub fn read_byte(&mut self) -> Result<u8, EndOfStreamError> {
        if self.bit_position.is_multiple_of(8) {
            // Fast path for the aligned case the arithmetic coder lives on.
            let byte = *self
                .bytes
                .get(self.bit_position / 8)
                .ok_or(EndOfStreamError::new(self.bit_position))?;
            self.bit_position += 8;
            Ok(byte)
        } else {
            Ok(self.read_bits(8)? as u8)
        }
    }

    /// Skips forward to the next byte boundary.  No-op when aligned.
    pub fn align_to_byte(&mut self) {
        self.bit_position = self.bit_position.next_multiple_of(8);
    }

    /// Current position in bits from the start of the stream.
    pub fn bit_position(&self) -> usize {
        self.bit_position
    }

    /// Number of unread bits.
    pub fn remaining_bits(&self) -> usize {
        (self.bytes.len() * 8).saturating_sub(self.bit_position)
    }

    /// Whether every bit has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining_bits() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_bits_msb_first() {
        let mut r = BitReader::new(&[0b1011_0001]);
        assert!(r.read_bit().unwrap());
        assert!(!r.read_bit().unwrap());
        assert_eq!(r.read_bits(6).unwrap(), 0b11_0001);
        assert!(r.is_exhausted());
    }

    #[test]
    fn read_past_end_reports_position() {
        let mut r = BitReader::new(&[0xFF]);
        r.read_bits(8).unwrap();
        let err = r.read_bit().unwrap_err();
        assert_eq!(err.bit_position(), 8);
        assert_eq!(err.to_string(), "unexpected end of bitstream at bit position 8");
    }

    #[test]
    fn failed_multi_bit_read_does_not_advance() {
        let mut r = BitReader::new(&[0xAA]);
        r.read_bits(5).unwrap();
        assert!(r.read_bits(4).is_err());
        assert_eq!(r.bit_position(), 5);
    }

    #[test]
    fn at_bit_starts_mid_stream() {
        let mut r = BitReader::at_bit(&[0b0000_0111, 0b1000_0000], 5);
        assert_eq!(r.read_bits(4).unwrap(), 0b1111);
    }

    #[test]
    #[should_panic(expected = "beyond stream")]
    fn at_bit_past_end_panics() {
        let _ = BitReader::at_bit(&[0], 9);
    }

    #[test]
    fn align_skips_to_boundary() {
        let mut r = BitReader::new(&[0xFF, 0x01]);
        r.read_bits(3).unwrap();
        r.align_to_byte();
        assert_eq!(r.read_byte().unwrap(), 0x01);
    }

    #[test]
    fn aligned_and_unaligned_byte_reads_agree() {
        let data = [0b1100_1100, 0b1010_1010, 0b0101_0101];
        let mut aligned = BitReader::new(&data);
        assert_eq!(aligned.read_byte().unwrap(), data[0]);
        let mut unaligned = BitReader::new(&data);
        unaligned.read_bits(4).unwrap();
        assert_eq!(unaligned.read_byte().unwrap(), 0b1100_1010);
    }

    #[test]
    fn zero_bit_read_returns_zero() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.read_bits(0).unwrap(), 0);
    }

    #[test]
    fn full_width_read_round_trips() {
        let mut r = BitReader::new(&[0xDE, 0xAD, 0xBE, 0xEF]);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEAD_BEEF);
    }
}
