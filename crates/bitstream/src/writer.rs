//! Bit-packing writer.

/// Packs bits most-significant-bit first into an owned byte buffer.
///
/// The writer never fails: it grows its buffer as needed.  Use
/// [`BitWriter::align_to_byte`] before concatenating independently decodable
/// regions (e.g. cache blocks) so each region starts on a byte boundary.
///
/// # Examples
///
/// ```
/// use cce_bitstream::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.align_to_byte();
/// assert_eq!(w.into_bytes(), vec![0b1010_0000]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the final byte of `bytes`; 0 means byte aligned.
    partial_bits: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with room for `capacity_bytes` bytes.
    pub fn with_capacity(capacity_bytes: usize) -> Self {
        Self { bytes: Vec::with_capacity(capacity_bytes), partial_bits: 0 }
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        if self.partial_bits == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("buffer non-empty");
            *last |= 1 << (7 - self.partial_bits);
        }
        self.partial_bits = (self.partial_bits + 1) % 8;
    }

    /// Appends the `count` least-significant bits of `value`, most
    /// significant of those bits first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`, or if `value` has bits set above `count`
    /// (a sign of a codeword-width bookkeeping bug in the caller).
    pub fn write_bits(&mut self, value: u32, count: u32) {
        assert!(count <= 32, "cannot write more than 32 bits at once");
        assert!(
            count == 32 || value >> count == 0,
            "value {value:#x} does not fit in {count} bits"
        );
        for i in (0..count).rev() {
            self.write_bit(value >> i & 1 == 1);
        }
    }

    /// Appends a whole byte (8 bits).
    pub fn write_byte(&mut self, byte: u8) {
        if self.partial_bits == 0 {
            self.bytes.push(byte);
        } else {
            self.write_bits(u32::from(byte), 8);
        }
    }

    /// Appends a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        if self.partial_bits == 0 {
            self.bytes.extend_from_slice(bytes);
        } else {
            for &b in bytes {
                self.write_byte(b);
            }
        }
    }

    /// Pads with `0` bits to the next byte boundary.  No-op when already aligned.
    pub fn align_to_byte(&mut self) {
        self.partial_bits = 0;
    }

    /// Total number of bits written so far (including the unfinished byte).
    pub fn bit_len(&self) -> usize {
        if self.partial_bits == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + usize::from(self.partial_bits)
        }
    }

    /// Number of bytes the finished stream will occupy (partial bytes round up).
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Finishes the stream, zero-padding the final partial byte.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Borrows the finished prefix of the stream (excludes nothing: the final
    /// partial byte is visible with its padding zeroes).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_writer_produces_no_bytes() {
        let w = BitWriter::new();
        assert!(w.is_empty());
        assert_eq!(w.bit_len(), 0);
        assert_eq!(w.into_bytes(), Vec::<u8>::new());
    }

    #[test]
    fn single_bits_pack_msb_first() {
        let mut w = BitWriter::new();
        for bit in [true, false, true, true, false, false, false, true] {
            w.write_bit(bit);
        }
        assert_eq!(w.into_bytes(), vec![0b1011_0001]);
    }

    #[test]
    fn write_bits_matches_bit_by_bit() {
        let mut a = BitWriter::new();
        a.write_bits(0b110101, 6);
        let mut b = BitWriter::new();
        for bit in [true, true, false, true, false, true] {
            b.write_bit(bit);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn write_bits_zero_count_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(0, 0);
        assert_eq!(w.bit_len(), 0);
    }

    #[test]
    fn write_full_width_value() {
        let mut w = BitWriter::new();
        w.write_bits(u32::MAX, 32);
        assert_eq!(w.into_bytes(), vec![0xFF; 4]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        let mut w = BitWriter::new();
        w.write_bits(0b100, 2);
    }

    #[test]
    fn align_pads_with_zeroes() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.align_to_byte();
        w.write_byte(0xAB);
        assert_eq!(w.into_bytes(), vec![0b1000_0000, 0xAB]);
    }

    #[test]
    fn align_when_aligned_is_noop() {
        let mut w = BitWriter::new();
        w.write_byte(1);
        let before = w.clone();
        w.align_to_byte();
        assert_eq!(w, before);
    }

    #[test]
    fn bit_len_counts_partial_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        assert_eq!(w.bit_len(), 3);
        assert_eq!(w.byte_len(), 1);
        w.write_byte(0);
        assert_eq!(w.bit_len(), 11);
        assert_eq!(w.byte_len(), 2);
    }

    #[test]
    fn unaligned_byte_slices_round_through_bits() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write_bytes(&[0x0F, 0xF0]);
        // 1 | 0000_1111 | 1111_0000 => 1000_0111 1111_1000 0...
        assert_eq!(w.into_bytes(), vec![0b1000_0111, 0b1111_1000, 0b0000_0000]);
    }
}
