//! Byte-granular cursor for fixed-width container formats.

use crate::EndOfStreamError;

/// A byte-oriented cursor with checked little/big-endian integer reads.
///
/// Used by the ELF parser and by the compressed-image container, where all
/// fields are byte aligned and the failure mode of interest is truncation.
///
/// # Examples
///
/// ```
/// use cce_bitstream::ByteCursor;
///
/// # fn main() -> Result<(), cce_bitstream::EndOfStreamError> {
/// let mut c = ByteCursor::new(&[0x34, 0x12, 0xFF]);
/// assert_eq!(c.read_u16_le()?, 0x1234);
/// assert_eq!(c.read_u8()?, 0xFF);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ByteCursor<'a> {
    bytes: &'a [u8],
    position: usize,
}

macro_rules! read_int {
    ($(#[$doc:meta])* $name:ident, $ty:ty, $from:ident) => {
        $(#[$doc])*
        ///
        /// # Errors
        ///
        /// Returns [`EndOfStreamError`] when the remaining bytes are too few.
        pub fn $name(&mut self) -> Result<$ty, EndOfStreamError> {
            const N: usize = std::mem::size_of::<$ty>();
            let bytes = self.read_bytes(N)?;
            Ok(<$ty>::$from(bytes.try_into().expect("length checked")))
        }
    };
}

impl<'a> ByteCursor<'a> {
    /// Creates a cursor over `bytes`, positioned at offset 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, position: 0 }
    }

    /// Reads a single byte.
    ///
    /// # Errors
    ///
    /// Returns [`EndOfStreamError`] at end of input.
    pub fn read_u8(&mut self) -> Result<u8, EndOfStreamError> {
        let byte =
            *self.bytes.get(self.position).ok_or(EndOfStreamError::new(self.position * 8))?;
        self.position += 1;
        Ok(byte)
    }

    read_int!(
        /// Reads a little-endian `u16`.
        read_u16_le, u16, from_le_bytes
    );
    read_int!(
        /// Reads a little-endian `u32`.
        read_u32_le, u32, from_le_bytes
    );
    read_int!(
        /// Reads a little-endian `u64`.
        read_u64_le, u64, from_le_bytes
    );
    read_int!(
        /// Reads a big-endian `u16`.
        read_u16_be, u16, from_be_bytes
    );
    read_int!(
        /// Reads a big-endian `u32`.
        read_u32_be, u32, from_be_bytes
    );
    read_int!(
        /// Reads a big-endian `u64`.
        read_u64_be, u64, from_be_bytes
    );

    /// Reads `count` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`EndOfStreamError`] if fewer than `count` bytes remain; the
    /// position does not advance on failure.
    pub fn read_bytes(&mut self, count: usize) -> Result<&'a [u8], EndOfStreamError> {
        let end = self
            .position
            .checked_add(count)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(EndOfStreamError::new(self.position * 8))?;
        let slice = &self.bytes[self.position..end];
        self.position = end;
        Ok(slice)
    }

    /// Moves the cursor to an absolute byte offset.
    ///
    /// # Errors
    ///
    /// Returns [`EndOfStreamError`] if `offset` lies beyond the buffer.
    pub fn seek(&mut self, offset: usize) -> Result<(), EndOfStreamError> {
        if offset > self.bytes.len() {
            // offset may be input-derived and huge; the bit position in the
            // error is diagnostic only, so saturate rather than overflow.
            return Err(EndOfStreamError::new(offset.saturating_mul(8)));
        }
        self.position = offset;
        Ok(())
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.position
    }

    /// Unread byte count.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.position
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endian_reads() {
        let data = [0x12, 0x34, 0x56, 0x78];
        let mut le = ByteCursor::new(&data);
        assert_eq!(le.read_u32_le().unwrap(), 0x7856_3412);
        let mut be = ByteCursor::new(&data);
        assert_eq!(be.read_u32_be().unwrap(), 0x1234_5678);
    }

    #[test]
    fn u64_reads() {
        let data = [1, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(ByteCursor::new(&data).read_u64_le().unwrap(), 1);
        assert_eq!(ByteCursor::new(&data).read_u64_be().unwrap(), 1 << 56);
    }

    #[test]
    fn truncated_read_fails_without_advancing() {
        let mut c = ByteCursor::new(&[1, 2, 3]);
        c.read_u16_le().unwrap();
        assert!(c.read_u32_le().is_err());
        assert_eq!(c.position(), 2);
        assert_eq!(c.remaining(), 1);
    }

    #[test]
    fn seek_and_read() {
        let mut c = ByteCursor::new(&[0, 0, 0xAB]);
        c.seek(2).unwrap();
        assert_eq!(c.read_u8().unwrap(), 0xAB);
        assert!(c.seek(4).is_err());
        assert!(c.seek(3).is_ok());
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn read_bytes_overflow_is_error_not_panic() {
        let mut c = ByteCursor::new(&[0u8; 4]);
        assert!(c.read_bytes(usize::MAX).is_err());
    }

    #[test]
    fn seek_near_usize_max_is_error_not_panic() {
        let mut c = ByteCursor::new(&[0u8; 4]);
        assert!(c.seek(usize::MAX).is_err());
        assert_eq!(c.position(), 0);
    }
}
