//! MSB-first bit-level I/O used by every codec in the workspace.
//!
//! Code compression produces streams that are not byte aligned: Huffman
//! codewords, dictionary indices and arithmetic-coder bytes all need to be
//! packed densely and unpacked in the exact same order.  This crate provides
//! the two halves of that contract:
//!
//! * [`BitWriter`] packs bits most-significant-bit first into a `Vec<u8>`.
//! * [`BitReader`] unpacks them again, tracking the consumed position so a
//!   decoder can stop exactly at a cache-block boundary.
//!
//! A small [`ByteCursor`] is also provided for the fixed-width little/big
//! endian reads needed by the ELF parser and container formats.
//!
//! # Examples
//!
//! ```
//! use cce_bitstream::{BitReader, BitWriter};
//!
//! # fn main() -> Result<(), cce_bitstream::EndOfStreamError> {
//! let mut w = BitWriter::new();
//! w.write_bit(true);
//! w.write_bits(0b1011, 4);
//! let bytes = w.into_bytes();
//!
//! let mut r = BitReader::new(&bytes);
//! assert!(r.read_bit()?);
//! assert_eq!(r.read_bits(4)?, 0b1011);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod byte_cursor;
mod reader;
mod writer;

pub use byte_cursor::ByteCursor;
pub use reader::BitReader;
pub use writer::BitWriter;

use std::error::Error;
use std::fmt;

/// Error returned when a read runs past the end of the underlying buffer.
///
/// The error carries the bit position at which the read was attempted so a
/// decoder can report *where* a truncated stream ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EndOfStreamError {
    bit_position: usize,
}

impl EndOfStreamError {
    pub(crate) fn new(bit_position: usize) -> Self {
        Self { bit_position }
    }

    /// Bit offset (from the start of the stream) at which the failed read began.
    pub fn bit_position(&self) -> usize {
        self.bit_position
    }
}

impl fmt::Display for EndOfStreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unexpected end of bitstream at bit position {}", self.bit_position)
    }
}

impl Error for EndOfStreamError {}
