//! SPEED — per-cache-block refill latency: the operation on the critical
//! path of every I-cache miss (paper §3's motivation for the
//! nibble-parallel engine and §6's "faster decompressor implementations").

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use cce_core::isa::Isa;
use cce_core::sadc::{MipsSadc, MipsSadcConfig};
use cce_core::samc::{SamcCodec, SamcConfig};
use cce_core::workload::spec95_suite;

fn block_refill(c: &mut Criterion) {
    let text = spec95_suite(Isa::Mips, 0.5)
        .into_iter()
        .find(|p| p.name == "ijpeg")
        .expect("ijpeg is in the suite")
        .text;

    let samc = SamcCodec::train(&text, SamcConfig::mips()).expect("trainable");
    let samc_image = samc.compress(&text);
    let sadc = MipsSadc::train(&text, MipsSadcConfig::default()).expect("trainable");
    let sadc_image = sadc.compress(&text);
    let block = 5usize;

    let mut group = c.benchmark_group("block_refill");
    group.throughput(Throughput::Bytes(32));

    group.bench_function("samc_serial", |b| {
        b.iter(|| {
            black_box(
                samc.decompress_block(black_box(samc_image.block(block)), 32)
                    .expect("decodes"),
            )
        });
    });
    group.bench_function("samc_nibble_engine", |b| {
        b.iter(|| {
            black_box(
                samc.decompress_block_engine(black_box(samc_image.block(block)), 32)
                    .expect("decodes"),
            )
        });
    });
    group.bench_function("sadc", |b| {
        b.iter(|| {
            black_box(
                sadc.decompress_block(black_box(sadc_image.block(block)), 32)
                    .expect("decodes"),
            )
        });
    });
    group.finish();

    // Report the modelled hardware cycles once (not a timing benchmark,
    // but the number the paper's engine design is about).
    let (_, stats) = samc
        .decompress_block_engine(samc_image.block(block), 32)
        .expect("decodes");
    eprintln!(
        "modelled nibble-engine refill: {} nibble cycles + {} load cycles = {} cycles per 32-byte block",
        stats.nibble_cycles,
        stats.load_cycles,
        stats.total_cycles()
    );
}

criterion_group!(benches, block_refill);
criterion_main!(benches);
