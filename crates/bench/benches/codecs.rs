//! SPEED — whole-program compression/decompression throughput for every
//! codec on a fixed MIPS benchmark text (synthetic `go`, ~64 KiB).
//!
//! The paper argues SADC "allows for fast hardware implementations" and
//! that SAMC's arithmetic decoding is the slower path; these benches give
//! the software-model counterpart of that comparison.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use cce_core::huffman::block::ByteBlockCodec;
use cce_core::isa::Isa;
use cce_core::lz::{Gzip, Lzw};
use cce_core::sadc::{MipsSadc, MipsSadcConfig};
use cce_core::samc::{SamcCodec, SamcConfig};
use cce_core::workload::spec95_suite;

fn benchmark_text() -> Vec<u8> {
    spec95_suite(Isa::Mips, 1.0)
        .into_iter()
        .find(|p| p.name == "go")
        .expect("go is in the suite")
        .text
}

fn compression(c: &mut Criterion) {
    let text = benchmark_text();
    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.sample_size(10);

    group.bench_function("samc", |b| {
        let codec = SamcCodec::train(&text, SamcConfig::mips()).expect("trainable");
        b.iter(|| black_box(codec.compress(black_box(&text))));
    });
    group.bench_function("sadc", |b| {
        let codec = MipsSadc::train(&text, MipsSadcConfig::default()).expect("trainable");
        b.iter(|| black_box(codec.compress(black_box(&text))));
    });
    group.bench_function("byte_huffman", |b| {
        let codec = ByteBlockCodec::train(&text).expect("trainable");
        b.iter(|| black_box(codec.compress(black_box(&text), 32)));
    });
    group.bench_function("lzw", |b| {
        let codec = Lzw::new();
        b.iter(|| black_box(codec.compress(black_box(&text))));
    });
    group.bench_function("gzip", |b| {
        let codec = Gzip::new();
        b.iter(|| black_box(codec.compress(black_box(&text))));
    });
    group.finish();
}

fn decompression(c: &mut Criterion) {
    let text = benchmark_text();
    let mut group = c.benchmark_group("decompress");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.sample_size(10);

    group.bench_function("samc", |b| {
        let codec = SamcCodec::train(&text, SamcConfig::mips()).expect("trainable");
        let image = codec.compress(&text);
        b.iter(|| black_box(codec.decompress(black_box(&image)).expect("round trip")));
    });
    group.bench_function("sadc", |b| {
        let codec = MipsSadc::train(&text, MipsSadcConfig::default()).expect("trainable");
        let image = codec.compress(&text);
        b.iter(|| black_box(codec.decompress(black_box(&image)).expect("round trip")));
    });
    group.bench_function("byte_huffman", |b| {
        let codec = ByteBlockCodec::train(&text).expect("trainable");
        let image = codec.compress(&text, 32);
        b.iter(|| black_box(codec.decompress(black_box(&image)).expect("round trip")));
    });
    group.bench_function("lzw", |b| {
        let codec = Lzw::new();
        let compressed = codec.compress(&text);
        b.iter(|| black_box(codec.decompress(black_box(&compressed)).expect("round trip")));
    });
    group.bench_function("gzip", |b| {
        let codec = Gzip::new();
        let compressed = codec.compress(&text);
        b.iter(|| black_box(codec.decompress(black_box(&compressed)).expect("round trip")));
    });
    group.finish();
}

fn training(c: &mut Criterion) {
    let text = benchmark_text();
    let mut group = c.benchmark_group("train");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.sample_size(10);

    group.bench_function("samc", |b| {
        b.iter(|| black_box(SamcCodec::train(black_box(&text), SamcConfig::mips()).expect("ok")));
    });
    group.bench_function("sadc", |b| {
        b.iter(|| {
            black_box(MipsSadc::train(black_box(&text), MipsSadcConfig::default()).expect("ok"))
        });
    });
    group.finish();
}

criterion_group!(benches, compression, decompression, training);
criterion_main!(benches);
