//! Table and JSON rendering for figure rows.
//!
//! [`render_table`] produces exactly the aligned-text layout the figure
//! binaries have always printed (the parallel-equivalence tests compare
//! these strings byte for byte); [`render_json`] produces the
//! machine-readable form using the JSON helpers in `cce_core::report`.

use crate::FigureRow;
use cce_core::report::{json_number, json_string};
use cce_core::Algorithm;
use std::fmt::Write as _;

/// Renders a figure as an aligned table with a trailing mean row.
pub fn render_table(title: &str, algorithms: &[Algorithm], rows: &[FigureRow]) -> String {
    let mut out = String::new();
    writeln!(out, "{title}").expect("string write");
    write!(out, "{:<10}", "benchmark").expect("string write");
    for a in algorithms {
        write!(out, " {:>9}", a.to_string()).expect("string write");
    }
    writeln!(out).expect("string write");
    let mut sums = vec![0.0f64; algorithms.len()];
    for row in rows {
        write!(out, "{:<10}", row.benchmark).expect("string write");
        for (i, r) in row.ratios.iter().enumerate() {
            write!(out, " {r:>9.3}").expect("string write");
            sums[i] += r;
        }
        writeln!(out).expect("string write");
    }
    write!(out, "{:<10}", "MEAN").expect("string write");
    for s in &sums {
        write!(out, " {:>9.3}", s / rows.len() as f64).expect("string write");
    }
    writeln!(out).expect("string write");
    out
}

/// Prints [`render_table`] to stdout.
pub fn print_figure(title: &str, algorithms: &[Algorithm], rows: &[FigureRow]) {
    print!("{}", render_table(title, algorithms, rows));
}

/// Renders a figure as a JSON object:
/// `{"title", "algorithms", "rows": [{"benchmark", "ratios"}], "means"}`.
pub fn render_json(title: &str, algorithms: &[Algorithm], rows: &[FigureRow]) -> String {
    let algorithm_names: Vec<String> =
        algorithms.iter().map(|a| json_string(&a.to_string())).collect();
    let row_objects: Vec<String> = rows
        .iter()
        .map(|row| {
            let ratios: Vec<String> = row.ratios.iter().map(|&r| json_number(r)).collect();
            format!(
                "{{\"benchmark\":{},\"ratios\":[{}]}}",
                json_string(row.benchmark),
                ratios.join(",")
            )
        })
        .collect();
    let mean_values: Vec<String> = means(rows).iter().map(|&m| json_number(m)).collect();
    format!(
        "{{\"title\":{},\"algorithms\":[{}],\"rows\":[{}],\"means\":[{}]}}",
        json_string(title),
        algorithm_names.join(","),
        row_objects.join(","),
        mean_values.join(",")
    )
}

/// Mean ratio per algorithm across rows.
pub fn means(rows: &[FigureRow]) -> Vec<f64> {
    if rows.is_empty() {
        return Vec::new();
    }
    let n = rows[0].ratios.len();
    let mut sums = vec![0.0f64; n];
    for row in rows {
        for (i, r) in row.ratios.iter().enumerate() {
            sums[i] += r;
        }
    }
    sums.iter().map(|s| s / rows.len() as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<FigureRow> {
        vec![
            FigureRow { benchmark: "a", ratios: vec![0.5, 0.7] },
            FigureRow { benchmark: "b", ratios: vec![0.3, 0.5] },
        ]
    }

    #[test]
    fn rows_and_means() {
        assert_eq!(means(&sample_rows()), vec![0.4, 0.6]);
    }

    #[test]
    fn table_layout_is_stable() {
        let table = render_table("test", &[Algorithm::Samc, Algorithm::Sadc], &sample_rows());
        let expected = "test\n\
                        benchmark       SAMC      SADC\n\
                        a              0.500     0.700\n\
                        b              0.300     0.500\n\
                        MEAN           0.400     0.600\n";
        assert_eq!(table, expected);
    }

    #[test]
    fn json_shape_is_complete() {
        let json = render_json("test", &[Algorithm::Samc, Algorithm::Sadc], &sample_rows());
        for needle in [
            "\"title\":\"test\"",
            "\"algorithms\":[\"SAMC\",\"SADC\"]",
            "\"benchmark\":\"a\"",
            "\"ratios\":[0.5,0.7]",
            "\"means\":[0.4",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }
}
