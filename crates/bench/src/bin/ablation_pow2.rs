//! CLAIM-POW2 — paper §3: "To avoid the multiplication in the midpoint
//! calculation unit we can constrain the probability of the less probable
//! symbol to the nearest integral power of 1/2, thus requiring only
//! shifts.  Witten et al showed that the worst-case efficiency is about
//! 95% when we pose this constraint."
//!
//! Measures the actual efficiency loss of Pow2 quantization on the MIPS
//! suite: coded-payload sizes with exact vs power-of-two probabilities
//! (model bytes excluded — the Pow2 model is *smaller*, 4 bits/entry, so
//! including it would mask the coding loss).

use cce_bench::scale_from_env;
use cce_core::arith::ProbMode;
use cce_core::isa::Isa;
use cce_core::samc::{MarkovConfig, SamcCodec, SamcConfig};
use cce_core::workload::spec95_suite;

fn payload_bytes(text: &[u8], prob_mode: ProbMode) -> usize {
    let config =
        SamcConfig { markov: MarkovConfig { context_bits: 1, prob_mode }, ..SamcConfig::mips() };
    let codec = SamcCodec::train(text, config).expect("trainable");
    let image = codec.compress(text);
    image.compressed_len() - codec.model().model_bytes()
}

fn main() {
    let scale = scale_from_env();
    println!("Power-of-two probability ablation, SAMC payload on MIPS (scale {scale})");
    println!("{:<10} {:>10} {:>10} {:>11}", "benchmark", "exact", "pow2", "efficiency");
    let mut total_exact = 0usize;
    let mut total_pow2 = 0usize;
    for program in spec95_suite(Isa::Mips, scale) {
        let exact = payload_bytes(&program.text, ProbMode::Exact);
        let pow2 = payload_bytes(&program.text, ProbMode::Pow2);
        total_exact += exact;
        total_pow2 += pow2;
        println!(
            "{:<10} {:>10} {:>10} {:>10.1}%",
            program.name,
            exact,
            pow2,
            100.0 * exact as f64 / pow2 as f64
        );
    }
    println!(
        "{:<10} {:>10} {:>10} {:>10.1}%  (paper/Witten et al: ~95% worst case)",
        "TOTAL",
        total_exact,
        total_pow2,
        100.0 * total_exact as f64 / total_pow2 as f64
    );
}
