//! ARCH-LAT — extension experiment: the Wolfe/Chanin LAT padding trade.
//!
//! The LAT lives in main memory next to the compressed code, so its size
//! is real footprint.  Padding every compressed block to a multiple of
//! 2^k bytes wastes compression but drops k bits from every LAT entry.
//! This sweep finds where the total footprint (compressed code + model +
//! LAT) is minimized for real SAMC images.

use cce_bench::scale_from_env;
use cce_core::isa::Isa;
use cce_core::memsim::LineAddressTable;
use cce_core::workload::spec95_suite;
use cce_core::{measure, Algorithm};

fn main() {
    let scale = scale_from_env();
    println!("LAT padding sweep, SAMC on MIPS (scale {scale})");
    println!(
        "{:<10} {:>4} {:>10} {:>9} {:>10} {:>10}",
        "benchmark", "pad", "code", "LAT", "footprint", "ratio"
    );
    for program in spec95_suite(Isa::Mips, scale).iter().step_by(5) {
        let m = measure(Algorithm::Samc, Isa::Mips, &program.text, 32).expect("SAMC measures");
        let sizes: Vec<usize> = m.block_sizes().expect("random access").to_vec();
        let model = m.compressed_len() - sizes.iter().sum::<usize>();
        let mut best: Option<(usize, usize)> = None;
        for pad in [1usize, 2, 4, 8, 16, 32] {
            let lat = LineAddressTable::padded(sizes.iter().copied(), pad);
            let code = lat.compressed_total() as usize;
            let footprint = code + model + lat.table_bytes();
            if best.is_none_or(|(_, b)| footprint < b) {
                best = Some((pad, footprint));
            }
            println!(
                "{:<10} {:>4} {:>10} {:>9} {:>10} {:>10.3}",
                program.name,
                pad,
                code,
                lat.table_bytes(),
                footprint,
                footprint as f64 / m.original_len() as f64
            );
        }
        let (pad, footprint) = best.expect("swept at least one pad");
        println!(
            "{:<10} best pad {pad} (footprint {footprint}, {:.3})",
            "->",
            footprint as f64 / m.original_len() as f64
        );
    }
}
