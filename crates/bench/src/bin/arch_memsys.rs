//! ARCH — paper §2/Fig. 1: the Wolfe/Chanin architecture decompresses on
//! cache refills, so "the loss in performance should depend on the
//! instruction cache hit ratio", and the CLB hides LAT lookups.
//!
//! Runs a locality-bearing fetch trace against real SAMC block sizes for
//! one benchmark, sweeping cache size and CLB capacity.

use cce_bench::scale_from_env;
use cce_core::isa::Isa;
use cce_core::memsim::{CacheConfig, CostModel, LineAddressTable, MemorySystem};
use cce_core::workload::spec95_suite;
use cce_core::workload::trace::{instruction_trace, TraceConfig};
use cce_core::{measure, Algorithm};

fn main() {
    let scale = scale_from_env();
    let programs = spec95_suite(Isa::Mips, scale);
    let program = programs.iter().find(|p| p.name == "go").expect("in suite");
    let m = measure(Algorithm::Samc, Isa::Mips, &program.text, 32).expect("SAMC measures");
    let sizes: Vec<usize> = m.block_sizes().expect("random access").to_vec();
    println!(
        "Memory-system experiment: {} ({} bytes, SAMC ratio {:.3}, LAT {} bytes)",
        program.name,
        m.original_len(),
        m.ratio(),
        m.lat_bytes().expect("lat")
    );

    let trace = instruction_trace(
        program.text.len(),
        &TraceConfig { fetches: 300_000, ..TraceConfig::default() },
    );
    let costs = CostModel::default();

    println!();
    println!("Cache sweep (CLB = 32 entries)");
    println!(
        "{:>9} {:>8} {:>10} {:>10} {:>9}",
        "cache", "miss%", "CPF base", "CPF comp", "slowdown"
    );
    for kib in [1usize, 2, 4, 8, 16, 32, 64] {
        let config = CacheConfig { size_bytes: kib * 1024, block_size: 32, associativity: 2 };
        let mut base = MemorySystem::uncompressed(config, costs);
        let base_report = base.run(&trace);
        let lat = LineAddressTable::from_block_sizes(sizes.iter().copied());
        let mut comp = MemorySystem::compressed(config, costs, lat, 32);
        let report = comp.run(&trace);
        println!(
            "{:>6}KiB {:>7.2}% {:>10.3} {:>10.3} {:>8.3}x",
            kib,
            100.0 * base_report.cache.miss_ratio(),
            base_report.cpf(),
            report.cpf(),
            report.slowdown_vs(&base_report)
        );
    }

    println!();
    println!("CLB sweep (4 KiB cache): LAT lookups hidden by the lookaside buffer");
    println!("{:>6} {:>10} {:>10} {:>10}", "CLB", "clb hit%", "CPF", "refill cyc");
    for entries in [1usize, 4, 16, 64, 256] {
        let config = CacheConfig { size_bytes: 4096, block_size: 32, associativity: 2 };
        let lat = LineAddressTable::from_block_sizes(sizes.iter().copied());
        let mut system = MemorySystem::compressed(config, costs, lat, entries);
        let report = system.run(&trace);
        let clb_total = report.clb_hits + report.clb_misses;
        println!(
            "{:>6} {:>9.2}% {:>10.3} {:>10}",
            entries,
            100.0 * report.clb_hits as f64 / clb_total.max(1) as f64,
            report.cpf(),
            report.refill_cycles
        );
    }
}
