//! SPEED — whole-program compression/decompression throughput for every
//! codec on a fixed MIPS benchmark text (synthetic `go`, ~64 KiB).
//!
//! The paper argues SADC "allows for fast hardware implementations" and
//! that SAMC's arithmetic decoding is the slower path; these benches give
//! the software-model counterpart of that comparison.
//!
//! Run with:
//!   cargo run --release -p cce-bench --features timing --bin bench_codecs

use cce_bench::timing::Group;

use cce_core::codec::compress_parallel;
use cce_core::huffman::block::ByteBlockCodec;
use cce_core::isa::Isa;
use cce_core::lz::{Gzip, Lzw};
use cce_core::sadc::{MipsSadc, MipsSadcConfig};
use cce_core::samc::{SamcCodec, SamcConfig};
use cce_core::workload::spec95_suite;

fn benchmark_text() -> Vec<u8> {
    spec95_suite(Isa::Mips, 1.0)
        .into_iter()
        .find(|p| p.name == "go")
        .expect("go is in the suite")
        .text
}

fn compression(text: &[u8]) {
    let group = Group::new("compress").throughput_bytes(text.len() as u64);

    let samc = SamcCodec::train(text, SamcConfig::mips()).expect("trainable");
    group.bench("samc", || samc.compress(text));
    let sadc = MipsSadc::train(text, MipsSadcConfig::default()).expect("trainable");
    group.bench("sadc", || sadc.compress(text));
    let huffman = ByteBlockCodec::train(text, 32).expect("trainable");
    group.bench("byte_huffman", || huffman.compress(text));
    let lzw = Lzw::new();
    group.bench("lzw", || lzw.compress(text));
    let gzip = Gzip::new();
    group.bench("gzip", || gzip.compress(text));
}

fn decompression(text: &[u8]) {
    let group = Group::new("decompress").throughput_bytes(text.len() as u64);

    let samc = SamcCodec::train(text, SamcConfig::mips()).expect("trainable");
    let samc_image = samc.compress(text);
    group.bench("samc", || samc.decompress(&samc_image).expect("round trip"));
    let sadc = MipsSadc::train(text, MipsSadcConfig::default()).expect("trainable");
    let sadc_image = sadc.compress(text);
    group.bench("sadc", || sadc.decompress(&sadc_image).expect("round trip"));
    let huffman = ByteBlockCodec::train(text, 32).expect("trainable");
    let huffman_image = huffman.compress(text);
    group.bench("byte_huffman", || huffman.decompress(&huffman_image).expect("round trip"));
    let lzw = Lzw::new();
    let lzw_compressed = lzw.compress(text);
    group.bench("lzw", || lzw.decompress(&lzw_compressed).expect("round trip"));
    let gzip = Gzip::new();
    let gzip_compressed = gzip.compress(text);
    group.bench("gzip", || gzip.decompress(&gzip_compressed).expect("round trip"));
}

fn training(text: &[u8]) {
    let group = Group::new("train").throughput_bytes(text.len() as u64);
    group.bench("samc", || SamcCodec::train(text, SamcConfig::mips()).expect("ok"));
    group.bench("sadc", || MipsSadc::train(text, MipsSadcConfig::default()).expect("ok"));
}

/// The parallel pipeline against its own serial path: same codec, same
/// text, worker counts 1 / 2 / all cores.  The output images are
/// byte-identical (asserted by the equivalence tests); this group shows
/// the wall-clock side of that trade.
fn parallel_compression(text: &[u8]) {
    let group = Group::new("compress_parallel").throughput_bytes(text.len() as u64);
    let samc = SamcCodec::train(text, SamcConfig::mips()).expect("trainable");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1usize, 2, cores];
    counts.sort_unstable();
    counts.dedup();
    for workers in counts {
        group.bench(&format!("samc_workers_{workers}"), || {
            compress_parallel(&samc, text, workers).expect("compresses")
        });
    }
}

fn main() {
    let text = benchmark_text();
    compression(&text);
    decompression(&text);
    training(&text);
    parallel_compression(&text);
}
