//! FIG7 — regenerates Figure 7: MIPS compression ratios over the 18
//! SPEC95 benchmarks for compress, gzip, SAMC and SADC (32-byte blocks).
//!
//! Paper reference points (read off Fig. 7): SAMC ≈ UNIX compress
//! (~0.55–0.60 on average), gzip generally best (~0.45–0.55), SADC 4–6%
//! better than SAMC and close to gzip on some benchmarks.

use cce_bench::{figure_rows, print_figure, scale_from_env};
use cce_core::isa::Isa;
use cce_core::Algorithm;

fn main() {
    let algorithms = [Algorithm::UnixCompress, Algorithm::Gzip, Algorithm::Samc, Algorithm::Sadc];
    let scale = scale_from_env();
    let rows = figure_rows(Isa::Mips, &algorithms, scale, 32)
        .unwrap_or_else(|e| panic!("figure 7 failed: {e}"));
    print_figure(
        &format!("Figure 7 — compression ratios, MIPS (scale {scale})"),
        &algorithms,
        &rows,
    );
}
