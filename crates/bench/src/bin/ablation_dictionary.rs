//! CLAIM-DICT — paper §4: the SADC dictionary is capped at 256 entries
//! ("we can augment the instruction set by about 200 new opcodes"), grown
//! iteratively from group and operand-specialization candidates.
//!
//! Sweeps the dictionary budget and toggles each candidate class on a
//! sample of the MIPS suite.  Expected: monotone improvement with budget,
//! diminishing returns near 256; every candidate class contributes.

use cce_bench::scale_from_env;
use cce_core::isa::mips::Operation;
use cce_core::isa::Isa;
use cce_core::sadc::{MipsSadc, MipsSadcConfig};
use cce_core::workload::spec95_suite;

fn ratio(text: &[u8], config: MipsSadcConfig) -> f64 {
    let codec = MipsSadc::train(text, config).expect("trainable");
    codec.compress(text).ratio()
}

fn main() {
    let scale = scale_from_env();
    let programs = spec95_suite(Isa::Mips, scale);
    let sample: Vec<_> = programs.iter().step_by(4).collect();

    println!("Dictionary-size sweep, SADC on MIPS (scale {scale})");
    print!("{:<10}", "benchmark");
    let budgets = [Operation::COUNT + 8, 96, 128, 192, 256];
    for b in budgets {
        print!(" {b:>8}");
    }
    println!();
    for program in &sample {
        print!("{:<10}", program.name);
        for max_tokens in budgets {
            let config = MipsSadcConfig { max_tokens, ..Default::default() };
            print!(" {:>8.3}", ratio(&program.text, config));
        }
        println!();
    }

    println!();
    println!("Candidate-class ablation (256-entry budget)");
    println!(
        "{:<10} {:>8} {:>10} {:>9} {:>9} {:>8}",
        "benchmark", "none", "groups", "+regs", "+imms", "all"
    );
    for program in &sample {
        let none = MipsSadcConfig {
            groups: false,
            reg_specialization: false,
            imm_specialization: false,
            ..Default::default()
        };
        let groups = MipsSadcConfig {
            reg_specialization: false,
            imm_specialization: false,
            ..Default::default()
        };
        let regs = MipsSadcConfig { imm_specialization: false, ..Default::default() };
        let imms = MipsSadcConfig { reg_specialization: false, ..Default::default() };
        let all = MipsSadcConfig::default();
        println!(
            "{:<10} {:>8.3} {:>10.3} {:>9.3} {:>9.3} {:>8.3}",
            program.name,
            ratio(&program.text, none),
            ratio(&program.text, groups),
            ratio(&program.text, regs),
            ratio(&program.text, imms),
            ratio(&program.text, all),
        );
    }
}
