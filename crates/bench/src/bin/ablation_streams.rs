//! CLAIM-STREAM — paper §3: "dividing 32-bit instructions into 4 8-bit
//! streams (a stream does not necessarily have adjacent bits) produces
//! results close to optimal", with the stream division chosen by
//! correlation grouping plus random exchange.
//!
//! Compares 1×32 is impossible (model budget), so the sweep covers 2×16,
//! 4×8, 8×4 contiguous divisions plus the optimizer's 4-stream division,
//! on a sample of the MIPS suite.

use cce_bench::scale_from_env;
use cce_core::isa::Isa;
use cce_core::samc::{optimize_division, OptimizeConfig, SamcCodec, SamcConfig, StreamDivision};
use cce_core::workload::spec95_suite;

/// (payload ratio, total ratio incl. model storage).
fn ratios(text: &[u8], division: StreamDivision) -> (f64, f64) {
    let config = SamcConfig::mips().with_division(division);
    let codec = SamcCodec::train(text, config).expect("trainable");
    let image = codec.compress(text);
    let payload = image.compressed_len() - codec.model().model_bytes();
    (payload as f64 / text.len() as f64, image.ratio())
}

fn main() {
    let scale = scale_from_env();
    println!("Stream-division ablation, SAMC on MIPS (scale {scale})");
    println!("payload = coded bits only; total adds the stored Markov trees.");
    println!("(2x16 streams need 2·2·(2^16−1) probabilities ≈ 393 KiB of model —");
    println!(" the storage blow-up that is the paper's first reason for streams.)");
    println!(
        "{:<10} {:>7} {:>7} | {:>7} {:>7} | {:>7} {:>7} | {:>8} {:>8}",
        "benchmark", "2x16", "(tot)", "4x8", "(tot)", "8x4", "(tot)", "opt-4", "(tot)"
    );
    for program in spec95_suite(Isa::Mips, scale).iter().step_by(3) {
        let words: Vec<u32> = program
            .text
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes(c.try_into().expect("4-byte chunk")))
            .collect();
        let (optimized, _) = optimize_division(
            &words,
            32,
            &OptimizeConfig {
                streams: 4,
                iterations: 24,
                sample_units: 2048,
                ..Default::default()
            },
        );
        let wide = ratios(&program.text, StreamDivision::contiguous(32, 2));
        let bytes = ratios(&program.text, StreamDivision::bytes(32));
        let narrow = ratios(&program.text, StreamDivision::contiguous(32, 8));
        let opt = ratios(&program.text, optimized);
        println!(
            "{:<10} {:>7.3} {:>7.2} | {:>7.3} {:>7.3} | {:>7.3} {:>7.3} | {:>8.3} {:>8.3}",
            program.name, wide.0, wide.1, bytes.0, bytes.1, narrow.0, narrow.1, opt.0, opt.1
        );
    }
}
