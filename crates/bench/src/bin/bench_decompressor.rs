//! SPEED — per-cache-block refill latency: the operation on the critical
//! path of every I-cache miss (paper §3's motivation for the
//! nibble-parallel engine and §6's "faster decompressor implementations").
//!
//! Run with:
//!   cargo run --release -p cce-bench --features timing --bin bench_decompressor

use cce_bench::timing::Group;

use cce_core::isa::Isa;
use cce_core::sadc::{MipsSadc, MipsSadcConfig};
use cce_core::samc::{SamcCodec, SamcConfig};
use cce_core::workload::spec95_suite;

fn main() {
    let text = spec95_suite(Isa::Mips, 0.5)
        .into_iter()
        .find(|p| p.name == "ijpeg")
        .expect("ijpeg is in the suite")
        .text;

    let samc = SamcCodec::train(&text, SamcConfig::mips()).expect("trainable");
    let samc_image = samc.compress(&text);
    let sadc = MipsSadc::train(&text, MipsSadcConfig::default()).expect("trainable");
    let sadc_image = sadc.compress(&text);
    let block = 5usize;

    let group = Group::new("block_refill").throughput_bytes(32);
    group.bench("samc_serial", || {
        samc.decompress_block(samc_image.block(block), 32).expect("decodes")
    });
    group.bench("samc_nibble_engine", || {
        samc.decompress_block_engine(samc_image.block(block), 32).expect("decodes")
    });
    group.bench("sadc", || sadc.decompress_block(sadc_image.block(block), 32).expect("decodes"));

    // Report the modelled hardware cycles once (not a timing benchmark,
    // but the number the paper's engine design is about).
    let (_, stats) = samc.decompress_block_engine(samc_image.block(block), 32).expect("decodes");
    println!(
        "\nmodelled nibble-engine refill: {} nibble cycles + {} load cycles = {} cycles per 32-byte block",
        stats.nibble_cycles,
        stats.load_cycles,
        stats.total_cycles()
    );
}
