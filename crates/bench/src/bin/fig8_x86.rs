//! FIG8 — regenerates Figure 8: Pentium Pro (x86) compression ratios over
//! the 18 SPEC95 benchmarks for compress, gzip, SAMC and SADC.
//!
//! Paper reference points: file compressors do relatively better on the
//! CISC; SAMC cannot subdivide variable-length instructions (single byte
//! stream) and trails; SADC (3 byte streams) is better but still behind
//! gzip.

use cce_bench::{figure_rows, print_figure, scale_from_env};
use cce_core::isa::Isa;
use cce_core::Algorithm;

fn main() {
    let algorithms = [Algorithm::UnixCompress, Algorithm::Gzip, Algorithm::Samc, Algorithm::Sadc];
    let scale = scale_from_env();
    let rows = figure_rows(Isa::X86, &algorithms, scale, 32)
        .unwrap_or_else(|e| panic!("figure 8 failed: {e}"));
    print_figure(
        &format!("Figure 8 — compression ratios, Pentium Pro (scale {scale})"),
        &algorithms,
        &rows,
    );
}
