//! CLAIM-CONN — paper §3: "Compression performance can be improved by
//! connecting the Markov trees of adjacent streams.  This provides some
//! limited memory between streams to the model."
//!
//! Compares connected vs unconnected trees (same streams, same blocks)
//! across the MIPS suite, reporting both the coded **payload** (the
//! quantity the paper's claim is about) and the **total** including model
//! storage — connecting doubles the stored trees, so on smaller programs
//! the storage cost can offset the coding gain.

use cce_bench::scale_from_env;
use cce_core::arith::ProbMode;
use cce_core::isa::Isa;
use cce_core::samc::{MarkovConfig, SamcCodec, SamcConfig};
use cce_core::workload::spec95_suite;

/// (payload bytes, total bytes) for one configuration.
fn sizes(text: &[u8], context_bits: u8) -> (usize, usize) {
    let config = SamcConfig {
        markov: MarkovConfig { context_bits, prob_mode: ProbMode::Exact },
        ..SamcConfig::mips()
    };
    let codec = SamcCodec::train(text, config).expect("trainable");
    let image = codec.compress(text);
    (image.compressed_len() - codec.model().model_bytes(), image.compressed_len())
}

fn main() {
    let scale = scale_from_env();
    println!("Connected-trees ablation, SAMC on MIPS (scale {scale})");
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>12}",
        "benchmark", "payload Δ%", "total Δ%", "ratio uncon", "ratio conn"
    );
    let mut payload_sums = [0usize; 2];
    let mut total_sums = [0usize; 2];
    let programs = spec95_suite(Isa::Mips, scale);
    for program in &programs {
        let (payload_u, total_u) = sizes(&program.text, 0);
        let (payload_c, total_c) = sizes(&program.text, 1);
        payload_sums[0] += payload_u;
        payload_sums[1] += payload_c;
        total_sums[0] += total_u;
        total_sums[1] += total_c;
        println!(
            "{:<10} {:>13.2}% {:>13.2}% {:>12.3} {:>12.3}",
            program.name,
            100.0 * (payload_c as f64 - payload_u as f64) / payload_u as f64,
            100.0 * (total_c as f64 - total_u as f64) / total_u as f64,
            total_u as f64 / program.text.len() as f64,
            total_c as f64 / program.text.len() as f64,
        );
    }
    println!(
        "{:<10} {:>13.2}% {:>13.2}%   (negative = connected wins)",
        "SUITE",
        100.0 * (payload_sums[1] as f64 - payload_sums[0] as f64) / payload_sums[0] as f64,
        100.0 * (total_sums[1] as f64 - total_sums[0] as f64) / total_sums[0] as f64,
    );

    // Extension (paper §6 future work): deeper inter-stream context.
    println!();
    println!("Context-depth extension (suite payload bytes; model doubles per bit)");
    println!("{:>12} {:>14} {:>14}", "context bits", "payload", "payload Δ%");
    let mut base_payload = 0usize;
    for context_bits in 0u8..=3 {
        let mut payload = 0usize;
        for program in &programs {
            payload += sizes(&program.text, context_bits).0;
        }
        if context_bits == 0 {
            base_payload = payload;
        }
        println!(
            "{:>12} {:>14} {:>13.2}%",
            context_bits,
            payload,
            100.0 * (payload as f64 - base_payload as f64) / base_payload as f64
        );
    }
}
