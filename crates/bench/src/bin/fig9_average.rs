//! FIG9 — regenerates Figure 9: average compression ratios of the three
//! *instruction* compression schemes (byte-Huffman of Kozuch & Wolfe,
//! SAMC, SADC) on MIPS and x86.
//!
//! Paper reference points: MIPS ≈ {Huffman 0.73, SAMC ~0.57, SADC ~0.52};
//! on x86 the gaps shrink because SAMC/SADC lose their field-level stream
//! subdivision (SADC stays slightly ahead of Huffman thanks to its
//! dictionary and stream separation).

use cce_bench::{figure_rows, means, scale_from_env};
use cce_core::isa::Isa;
use cce_core::Algorithm;

fn main() {
    let algorithms = [Algorithm::ByteHuffman, Algorithm::Samc, Algorithm::Sadc];
    let scale = scale_from_env();
    println!("Figure 9 — average instruction-compression ratios (scale {scale})");
    println!("{:<6} {:>9} {:>9} {:>9}", "isa", "huffman", "SAMC", "SADC");
    for isa in [Isa::Mips, Isa::X86] {
        let rows = figure_rows(isa, &algorithms, scale, 32)
            .unwrap_or_else(|e| panic!("figure 9 failed for {isa}: {e}"));
        let m = means(&rows);
        println!("{:<6} {:>9.3} {:>9.3} {:>9.3}", isa.to_string(), m[0], m[1], m[2]);
    }
}
