//! EXT-PPM — extension experiment: measure the PPM/DMC class the paper's
//! §1 rules out.
//!
//! The paper: finite-context modelling achieves "the best performance.
//! However they require large amounts of memory both for compression and
//! decompression, making them unsuitable for program compression" — and
//! adaptivity forbids block random access entirely.  This binary puts
//! numbers on both halves of that argument using the workspace's adaptive
//! order-N context coder.

use cce_bench::scale_from_env;
use cce_core::isa::Isa;
use cce_core::lz::{ContextCoder, ContextCoderConfig, Gzip};
use cce_core::workload::spec95_suite;
use cce_core::{measure, Algorithm};

fn main() {
    let scale = scale_from_env();
    println!("Adaptive context modelling vs the paper's algorithms (scale {scale})");
    println!(
        "{:<10} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>12}",
        "benchmark", "SAMC", "gzip", "order-1", "order-2", "order-3", "model memory"
    );
    for program in spec95_suite(Isa::Mips, scale).iter().step_by(4) {
        let samc =
            measure(Algorithm::Samc, Isa::Mips, &program.text, 32).expect("SAMC measures").ratio();
        let gzip = Gzip::new().compress(&program.text).len() as f64 / program.text.len() as f64;
        let mut ratios = [0.0f64; 3];
        let mut model_bytes = 0usize;
        for (i, order) in (1..=3).enumerate() {
            let config = ContextCoderConfig { order, table_bits: 20 };
            let coder = ContextCoder::new(config);
            let compressed = coder.compress(&program.text);
            assert_eq!(
                coder.decompress(&compressed).expect("lossless"),
                program.text,
                "context coder must round-trip"
            );
            ratios[i] = compressed.len() as f64 / program.text.len() as f64;
            model_bytes = config.model_bytes();
        }
        println!(
            "{:<10} {:>8.3} {:>8.3} | {:>8.3} {:>8.3} {:>8.3} | {:>9} KiB",
            program.name,
            samc,
            gzip,
            ratios[0],
            ratios[1],
            ratios[2],
            model_bytes / 1024
        );
    }
    println!();
    println!("(the context coder's model memory dwarfs SAMC's ~3 KiB tables, and its");
    println!(" adaptivity means decompression must start at byte 0 — the two reasons");
    println!(" the paper excludes this class from compressed-code memories)");
}
