//! CLAIM-BLK — paper §5: "All of our experiments are done assuming a
//! cache block size of 32 bytes.  Different cache block sizes have a
//! minimal impact on the results presented."
//!
//! Sweeps the block size for SAMC and SADC on MIPS and prints the mean
//! suite ratio per size.  Expected: a gentle upward drift for smaller
//! blocks (more restart overhead) but differences of a few percent only.

use cce_bench::{figure_rows, means, scale_from_env};
use cce_core::isa::Isa;
use cce_core::Algorithm;

fn main() {
    let scale = scale_from_env();
    println!("Block-size ablation, MIPS suite means (scale {scale})");
    println!("{:>6} {:>9} {:>9}", "block", "SAMC", "SADC");
    for block_size in [16usize, 32, 64, 128] {
        let rows = figure_rows(Isa::Mips, &[Algorithm::Samc, Algorithm::Sadc], scale, block_size)
            .unwrap_or_else(|e| panic!("block size {block_size}: {e}"));
        let m = means(&rows);
        println!("{:>6} {:>9.3} {:>9.3}", block_size, m[0], m[1]);
    }
}
