//! A minimal wall-clock micro-benchmark harness (criterion replacement).
//!
//! The workspace builds with zero external dependencies, so the two
//! criterion benches were ported onto this module.  It is deliberately
//! simple: warm up, run timed batches until enough samples accumulate,
//! report min/median/p95.  That is sufficient for the paper's purpose —
//! comparing codecs against each other on the same machine — without
//! criterion's statistical machinery.
//!
//! Gated behind the `timing` cargo feature so ordinary builds and tests
//! never measure anything:
//!
//! ```text
//! cargo run --release -p cce-bench --features timing --bin bench_codecs
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target accumulated measurement time per benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(400);
/// Target warm-up time per benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(100);
/// Number of timed samples to aim for within the measurement budget.
const TARGET_SAMPLES: usize = 30;

/// Order statistics over one benchmark's timed samples.
///
/// Pure aggregation, separated from the measurement loop so the
/// reporting math is unit-testable without timing anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingSummary {
    /// Fastest sample.
    pub min: Duration,
    /// Median sample (lower-middle for even counts).
    pub median: Duration,
    /// 95th percentile (nearest-rank on the sorted samples).
    pub p95: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
}

impl TimingSummary {
    /// Summarizes `samples` (order irrelevant).
    ///
    /// # Panics
    ///
    /// Panics on an empty slice — a benchmark that produced no samples is
    /// a harness bug, not a result.
    pub fn from_samples(samples: &[Duration]) -> Self {
        assert!(!samples.is_empty(), "no timing samples collected");
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let p95_rank = (sorted.len() * 95).div_ceil(100).max(1) - 1;
        Self {
            min: sorted[0],
            median: sorted[sorted.len() / 2],
            p95: sorted[p95_rank],
            mean: sorted.iter().sum::<Duration>()
                / u32::try_from(sorted.len()).expect("few samples"),
        }
    }
}

/// A named group of related benchmarks sharing a throughput basis.
pub struct Group {
    name: String,
    throughput_bytes: Option<u64>,
}

impl Group {
    /// Starts a group and prints its header.
    #[must_use]
    pub fn new(name: &str) -> Self {
        println!("\n== {name} ==");
        println!(
            "{:<22} {:>12} {:>12} {:>12} {:>12}",
            "benchmark", "min", "median", "p95", "throughput"
        );
        Self { name: name.to_string(), throughput_bytes: None }
    }

    /// Sets the bytes processed per iteration, enabling MB/s reporting.
    #[must_use]
    pub fn throughput_bytes(mut self, bytes: u64) -> Self {
        self.throughput_bytes = Some(bytes);
        self
    }

    /// Times `f` and prints one result row.
    ///
    /// The return value of `f` is passed through [`black_box`] so the
    /// measured work cannot be optimized away.
    pub fn bench<R>(&self, label: &str, mut f: impl FnMut() -> R) {
        // Warm-up: also estimates the per-iteration cost for batch sizing.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < WARMUP_TARGET {
            black_box(f());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed() / u32::try_from(warmup_iters).unwrap_or(u32::MAX);

        // Batch so each sample is long enough for the clock to resolve.
        let batch = (Duration::from_micros(200).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1 << 20) as u64;
        let mut samples: Vec<Duration> = Vec::with_capacity(TARGET_SAMPLES);
        let measure_start = Instant::now();
        while samples.len() < TARGET_SAMPLES && measure_start.elapsed() < MEASURE_TARGET {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed() / u32::try_from(batch).expect("batch fits u32"));
        }
        let summary = TimingSummary::from_samples(&samples);
        let throughput = match self.throughput_bytes {
            Some(bytes) => {
                let mbps = bytes as f64 / summary.median.as_secs_f64() / 1e6;
                format!("{mbps:>9.1} MB/s")
            }
            None => "-".to_string(),
        };
        println!(
            "{:<22} {:>12} {:>12} {:>12} {:>12}",
            format!("{}/{label}", self.name),
            format_duration(summary.min),
            format_duration(summary.median),
            format_duration(summary.p95),
            throughput,
        );
    }
}

/// Formats a duration at a benchmark-friendly precision.
fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.1} µs", nanos as f64 / 1e3)
    } else if nanos < 10_000_000_000 {
        format!("{:.1} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_computes_order_statistics() {
        // 1..=100 ms, shuffled order must not matter.
        let mut samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        samples.reverse();
        let s = TimingSummary::from_samples(&samples);
        assert_eq!(s.min, Duration::from_millis(1));
        assert_eq!(s.median, Duration::from_millis(51)); // lower-middle of even count
        assert_eq!(s.p95, Duration::from_millis(95)); // nearest rank
        assert_eq!(s.mean, Duration::from_micros(50_500));
    }

    #[test]
    fn summary_degenerates_sanely_on_one_sample() {
        let s = TimingSummary::from_samples(&[Duration::from_nanos(7)]);
        assert_eq!((s.min, s.median, s.p95, s.mean), (s.min, s.min, s.min, s.min));
        assert_eq!(s.min, Duration::from_nanos(7));
    }

    #[test]
    fn p95_never_exceeds_max() {
        for n in 1..40 {
            let samples: Vec<Duration> = (1..=n).map(Duration::from_nanos).collect();
            let s = TimingSummary::from_samples(&samples);
            assert!(s.p95 <= Duration::from_nanos(n), "n={n}");
            assert!(s.p95 >= s.median, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "no timing samples")]
    fn empty_samples_panic() {
        let _ = TimingSummary::from_samples(&[]);
    }

    #[test]
    fn formats_cover_all_scales() {
        assert_eq!(format_duration(Duration::from_nanos(15)), "15 ns");
        assert_eq!(format_duration(Duration::from_micros(150)), "150.0 µs");
        assert_eq!(format_duration(Duration::from_millis(150)), "150.0 ms");
        assert_eq!(format_duration(Duration::from_secs(15)), "15.00 s");
    }

    #[test]
    fn bench_runs_the_closure() {
        let mut count = 0u64;
        let group = Group::new("smoke").throughput_bytes(8);
        group.bench("counter", || {
            count += 1;
            count
        });
        assert!(count > 0);
    }
}
