//! Shared helpers for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one figure or claim of the
//! DAC'98 paper (see DESIGN.md's experiment index).  They share the
//! [`suite`] runner (deterministic parallel measurement over the SPEC95
//! workload) and the [`reporter`] (aligned tables and JSON).
//!
//! Set `CCE_SCALE` (default `1.0`) to shrink or grow the synthetic
//! workload; the figures are produced at 1.0.  Set `CCE_WORKERS` to pin
//! the worker-pool size — results are byte-identical for any value.

pub mod reporter;
pub mod suite;

#[cfg(feature = "timing")]
pub mod timing;

pub use reporter::{means, print_figure, render_json, render_table};
pub use suite::{figure_rows, figure_rows_with_workers, FigureRow};

/// Workload scale from `CCE_SCALE` (default 1.0).
pub fn scale_from_env() -> f64 {
    std::env::var("CCE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s: &f64| s.is_finite() && s > 0.0)
        .unwrap_or(1.0)
}
