//! Shared helpers for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one figure or claim of the
//! DAC'98 paper (see DESIGN.md's experiment index).  They share the table
//! formatting and scale handling here.
//!
//! Set `CCE_SCALE` (default `1.0`) to shrink or grow the synthetic
//! workload; the figures are produced at 1.0.

use cce_core::isa::Isa;
use cce_core::{measure, Algorithm, MeasureError};

#[cfg(feature = "timing")]
pub mod timing;

/// Workload scale from `CCE_SCALE` (default 1.0).
pub fn scale_from_env() -> f64 {
    std::env::var("CCE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s: &f64| s.is_finite() && s > 0.0)
        .unwrap_or(1.0)
}

/// One row of a figure: a benchmark and its per-algorithm ratios.
#[derive(Debug, Clone)]
pub struct FigureRow {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Ratios in the same order as the header's algorithms.
    pub ratios: Vec<f64>,
}

/// Runs `algorithms` over the whole suite for `isa` and returns the rows.
///
/// Benchmarks are measured on parallel threads (they are independent);
/// row order matches the suite order regardless of scheduling.
///
/// # Errors
///
/// Propagates the first measurement failure (by suite order).
pub fn figure_rows(
    isa: Isa,
    algorithms: &[Algorithm],
    scale: f64,
    block_size: usize,
) -> Result<Vec<FigureRow>, MeasureError> {
    let programs = cce_core::workload::spec95_suite(isa, scale);
    let results: Vec<Result<FigureRow, MeasureError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = programs
            .iter()
            .map(|program| {
                scope.spawn(move || {
                    let ratios = algorithms
                        .iter()
                        .map(|&a| measure(a, isa, &program.text, block_size).map(|m| m.ratio()))
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(FigureRow { benchmark: program.name, ratios })
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("measurement thread must not panic")).collect()
    });
    results.into_iter().collect()
}

/// Prints a figure as an aligned table with a trailing mean row.
pub fn print_figure(title: &str, algorithms: &[Algorithm], rows: &[FigureRow]) {
    println!("{title}");
    print!("{:<10}", "benchmark");
    for a in algorithms {
        print!(" {:>9}", a.to_string());
    }
    println!();
    let mut sums = vec![0.0f64; algorithms.len()];
    for row in rows {
        print!("{:<10}", row.benchmark);
        for (i, r) in row.ratios.iter().enumerate() {
            print!(" {r:>9.3}");
            sums[i] += r;
        }
        println!();
    }
    print!("{:<10}", "MEAN");
    for s in &sums {
        print!(" {:>9.3}", s / rows.len() as f64);
    }
    println!();
}

/// Mean ratio per algorithm across rows.
pub fn means(rows: &[FigureRow]) -> Vec<f64> {
    if rows.is_empty() {
        return Vec::new();
    }
    let n = rows[0].ratios.len();
    let mut sums = vec![0.0f64; n];
    for row in rows {
        for (i, r) in row.ratios.iter().enumerate() {
            sums[i] += r;
        }
    }
    sums.iter().map(|s| s / rows.len() as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_means() {
        let rows = vec![
            FigureRow { benchmark: "a", ratios: vec![0.5, 0.7] },
            FigureRow { benchmark: "b", ratios: vec![0.3, 0.5] },
        ];
        assert_eq!(means(&rows), vec![0.4, 0.6]);
        print_figure("test", &[Algorithm::Samc, Algorithm::Sadc], &rows);
    }

    #[test]
    fn small_scale_figure_runs() {
        let rows = figure_rows(Isa::Mips, &[Algorithm::ByteHuffman], 0.02, 32).unwrap();
        assert_eq!(rows.len(), 18);
        assert!(means(&rows)[0] > 0.0);
    }
}
