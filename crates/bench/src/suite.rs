//! Suite runner: measures algorithm sets over the SPEC95-like workload.
//!
//! Built on the deterministic worker pool in `cce_core::codec`, so the
//! rows (and every figure printed from them) are byte-identical for any
//! worker count.

use cce_core::codec::{parallel_map, worker_count, CodecError};
use cce_core::isa::Isa;
use cce_core::{measure_with_workers, Algorithm};

/// One row of a figure: a benchmark and its per-algorithm ratios.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureRow {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Ratios in the same order as the header's algorithms.
    pub ratios: Vec<f64>,
}

/// Runs `algorithms` over the whole suite for `isa` and returns the rows.
///
/// Benchmarks fan out across [`worker_count`] threads (they are
/// independent); row order matches the suite order regardless of
/// scheduling.
///
/// # Errors
///
/// Propagates the first measurement failure (by suite order).
pub fn figure_rows(
    isa: Isa,
    algorithms: &[Algorithm],
    scale: f64,
    block_size: usize,
) -> Result<Vec<FigureRow>, CodecError> {
    figure_rows_with_workers(isa, algorithms, scale, block_size, worker_count())
}

/// [`figure_rows`] with an explicit worker count (1 = fully serial).
///
/// The pool parallelises across benchmarks; each measurement runs its
/// block compression serially inside its worker so the machine is not
/// oversubscribed.
///
/// # Errors
///
/// As [`figure_rows`].
pub fn figure_rows_with_workers(
    isa: Isa,
    algorithms: &[Algorithm],
    scale: f64,
    block_size: usize,
    workers: usize,
) -> Result<Vec<FigureRow>, CodecError> {
    let programs = cce_core::workload::spec95_suite(isa, scale);
    parallel_map(workers, &programs, |_, program| {
        let ratios = algorithms
            .iter()
            .map(|&a| measure_with_workers(a, isa, &program.text, block_size, 1).map(|m| m.ratio()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FigureRow { benchmark: program.name, ratios })
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_figure_runs() {
        let rows = figure_rows(Isa::Mips, &[Algorithm::ByteHuffman], 0.02, 32).unwrap();
        assert_eq!(rows.len(), 18);
        assert!(crate::means(&rows)[0] > 0.0);
    }

    #[test]
    fn worker_counts_agree() {
        let algorithms = [Algorithm::ByteHuffman, Algorithm::Samc];
        let serial = figure_rows_with_workers(Isa::Mips, &algorithms, 0.02, 32, 1).unwrap();
        for workers in [2, 8] {
            let parallel =
                figure_rows_with_workers(Isa::Mips, &algorithms, 0.02, 32, workers).unwrap();
            assert_eq!(serial, parallel, "{workers} workers");
        }
    }
}
