//! Code compression for embedded systems — umbrella crate.
//!
//! This workspace reproduces *Code Compression for Embedded Systems*
//! (Lekatsas & Wolf, DAC 1998): two cache-line-random-access code
//! compressors for the Wolfe/Chanin compressed-code architecture, the
//! baselines they are measured against, and the memory system that runs
//! them.  This crate re-exports every subsystem and adds the measurement
//! harness used by the figure-regeneration binaries:
//!
//! * [`Algorithm`] — the five compressors of the paper's evaluation,
//!   each buildable into a [`codec::BlockCodec`] or [`codec::FileCodec`]
//!   through the [`registry`].
//! * [`measure`] — train, compress, **verify the round trip**, and report
//!   honest sizes (dictionary/model/table overheads included).  One
//!   generic path serves every algorithm; [`measure_with_workers`] fans
//!   block compression across a deterministic worker pool.
//! * [`measure_suite`] — run one algorithm over the whole SPEC95-like
//!   workload suite, optionally in parallel via
//!   [`measure_suite_with_workers`].
//!
//! Re-exports: [`codec`], [`samc`], [`sadc`], [`huffman`], [`lz`],
//! [`arith`], [`bitstream`], [`isa`], [`elf`], [`workload`], [`memsim`].
//!
//! # Examples
//!
//! ```
//! use cce_core::{measure, Algorithm};
//! use cce_core::isa::Isa;
//! use cce_core::workload::{generate_mips, Spec95};
//! use cce_core::isa::mips::encode_text;
//!
//! # fn main() -> Result<(), cce_core::codec::CodecError> {
//! let profile = Spec95::by_name("compress").expect("known benchmark");
//! let text = encode_text(&generate_mips(profile, 1.0));
//!
//! let m = measure(Algorithm::Samc, Isa::Mips, &text, 32)?;
//! assert!(m.ratio() < 1.0);
//! assert!(m.random_access());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod container;
pub mod fuzz;
pub mod obs;
pub mod registry;
pub mod report;
pub mod stats;
pub mod streaming;

pub use cce_arith as arith;
pub use cce_bitstream as bitstream;
pub use cce_codec as codec;
pub use cce_elf as elf;
pub use cce_huffman as huffman;
pub use cce_isa as isa;
pub use cce_lz as lz;
pub use cce_memsim as memsim;
pub use cce_rans as rans;
pub use cce_sadc as sadc;
pub use cce_samc as samc;
pub use cce_serve as serve;
pub use cce_workload as workload;

pub use registry::{Algorithm, CodecBuilder, CodecHandle};

use cce_codec::CodecError;
use cce_isa::Isa;

/// One verified compression measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    algorithm: Algorithm,
    isa: Isa,
    original_len: usize,
    compressed_len: usize,
    /// Per-block compressed sizes (random-access algorithms only).
    block_sizes: Option<Vec<usize>>,
    /// LAT size in bytes (random-access algorithms only).
    lat_bytes: Option<usize>,
}

impl Measurement {
    /// The measured algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The instruction set the text was compiled for.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// Uncompressed text size in bytes.
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// Compressed size in bytes, including all model/dictionary/table
    /// overheads the decompressor needs.
    pub fn compressed_len(&self) -> usize {
        self.compressed_len
    }

    /// Compression ratio (compressed / original); lower is better.
    pub fn ratio(&self) -> f64 {
        self.compressed_len as f64 / self.original_len as f64
    }

    /// Per-block compressed sizes, for driving the memory simulator.
    pub fn block_sizes(&self) -> Option<&[usize]> {
        self.block_sizes.as_deref()
    }

    /// LAT size in bytes (`None` for file-oriented algorithms).
    pub fn lat_bytes(&self) -> Option<usize> {
        self.lat_bytes
    }

    /// Whether the measured algorithm is block-random-access.
    pub fn random_access(&self) -> bool {
        self.algorithm.random_access()
    }
}

/// Compresses `text` with `algorithm`, verifies the round trip, and
/// returns the verified measurement.
///
/// `block_size` applies to the random-access algorithms (the paper uses
/// 32 bytes everywhere); the file-oriented baselines ignore it.  Block
/// compression is fanned across [`codec::worker_count`] threads; the
/// result is byte-identical to the serial path.
///
/// # Errors
///
/// Returns [`CodecError::Train`] when the codec cannot be trained on
/// this text, [`CodecError::Corrupt`] when its own output cannot be
/// decoded, and [`CodecError::RoundTrip`] when decompression does not
/// reproduce the input — a codec bug, surfaced rather than reported as
/// a (meaningless) ratio.
pub fn measure(
    algorithm: Algorithm,
    isa: Isa,
    text: &[u8],
    block_size: usize,
) -> Result<Measurement, CodecError> {
    measure_with_workers(algorithm, isa, text, block_size, cce_codec::worker_count())
}

/// [`measure`] with an explicit worker count (1 = fully serial).
///
/// # Errors
///
/// As [`measure`].
pub fn measure_with_workers(
    algorithm: Algorithm,
    isa: Isa,
    text: &[u8],
    block_size: usize,
    workers: usize,
) -> Result<Measurement, CodecError> {
    let (compressed_len, block_sizes, lat_bytes) =
        match algorithm.build(isa, block_size).train(text)? {
            CodecHandle::File(codec) => {
                let compressed = codec.compress(text);
                if codec.decompress(&compressed)? != text {
                    return Err(CodecError::round_trip(codec.name()));
                }
                (compressed.len(), None, None)
            }
            CodecHandle::Block(codec) => {
                let image = cce_codec::compress_parallel(codec.as_ref(), text, workers)?;
                if codec.decompress(&image)? != text {
                    return Err(CodecError::round_trip(codec.name()));
                }
                let sizes: Vec<usize> = image.block_sizes().collect();
                (image.compressed_len(), Some(sizes), Some(image.lat_bytes()))
            }
        };
    Ok(Measurement {
        algorithm,
        isa,
        original_len: text.len(),
        compressed_len,
        block_sizes,
        lat_bytes,
    })
}

/// Measures an already-trained block codec over `text` — the model-cache
/// path, where training (or a cache hit) happened elsewhere and only
/// compression plus round-trip verification remain.
///
/// `algorithm`/`isa` label the measurement; the caller is responsible
/// for the codec actually implementing that algorithm.
///
/// # Errors
///
/// As [`measure`], minus the training errors.
pub fn measure_trained_block_codec(
    algorithm: Algorithm,
    isa: Isa,
    text: &[u8],
    codec: &dyn cce_codec::BlockCodec,
    workers: usize,
) -> Result<Measurement, CodecError> {
    let image = cce_codec::compress_parallel(codec, text, workers)?;
    if codec.decompress(&image)? != text {
        return Err(CodecError::round_trip(codec.name()));
    }
    let sizes: Vec<usize> = image.block_sizes().collect();
    Ok(Measurement {
        algorithm,
        isa,
        original_len: text.len(),
        compressed_len: image.compressed_len(),
        block_sizes: Some(sizes),
        lat_bytes: Some(image.lat_bytes()),
    })
}

/// One benchmark's verified measurement within a suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteMeasurement {
    /// SPEC95 benchmark name.
    pub benchmark: &'static str,
    /// The verified measurement.
    pub measurement: Measurement,
}

/// Runs `algorithm` over the whole SPEC95-like suite for `isa`.
///
/// `scale` is forwarded to the workload generator (1.0 reproduces the
/// figures; smaller values are handy in tests).  Benchmarks are measured
/// across [`codec::worker_count`] threads with a deterministic merge, so
/// results are identical to a serial run.
///
/// # Errors
///
/// Fails on the first benchmark (in suite order) whose measurement
/// fails.
pub fn measure_suite(
    algorithm: Algorithm,
    isa: Isa,
    scale: f64,
    block_size: usize,
) -> Result<Vec<SuiteMeasurement>, CodecError> {
    measure_suite_with_workers(algorithm, isa, scale, block_size, cce_codec::worker_count())
}

/// [`measure_suite`] with an explicit worker count (1 = fully serial).
///
/// The pool parallelises across benchmarks; each benchmark's block
/// compression runs serially inside its worker to avoid oversubscribing
/// the machine.
///
/// # Errors
///
/// As [`measure_suite`].
pub fn measure_suite_with_workers(
    algorithm: Algorithm,
    isa: Isa,
    scale: f64,
    block_size: usize,
    workers: usize,
) -> Result<Vec<SuiteMeasurement>, CodecError> {
    let programs = cce_workload::spec95_suite(isa, scale);
    cce_codec::parallel_map(workers, &programs, |_, program| {
        measure_with_workers(algorithm, isa, &program.text, block_size, 1)
            .map(|measurement| SuiteMeasurement { benchmark: program.name, measurement })
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cce_isa::mips::encode_text;
    use cce_workload::{generate_mips, generate_x86, Spec95};

    fn mips_text() -> Vec<u8> {
        encode_text(&generate_mips(Spec95::by_name("ijpeg").unwrap(), 0.05))
    }

    fn x86_text() -> Vec<u8> {
        generate_x86(Spec95::by_name("ijpeg").unwrap(), 0.05)
    }

    #[test]
    fn every_algorithm_measures_mips() {
        let text = mips_text();
        for algorithm in Algorithm::ALL {
            let m = measure(algorithm, Isa::Mips, &text, 32)
                .unwrap_or_else(|e| panic!("{algorithm}: {e}"));
            // At this tiny test scale the fixed model/table overheads can
            // exceed the text; only sanity-check here (ratios at realistic
            // sizes are asserted in `paper_ordering_holds_on_mips`).
            assert!(m.ratio() > 0.0 && m.ratio() < 3.0, "{algorithm}: {}", m.ratio());
            assert_eq!(m.original_len(), text.len());
            assert_eq!(m.random_access(), algorithm.random_access());
            assert_eq!(m.block_sizes().is_some(), algorithm.random_access());
            assert_eq!(m.lat_bytes().is_some(), algorithm.random_access());
        }
    }

    #[test]
    fn every_algorithm_measures_x86() {
        let text = x86_text();
        for algorithm in Algorithm::ALL {
            let m = measure(algorithm, Isa::X86, &text, 32)
                .unwrap_or_else(|e| panic!("{algorithm}: {e}"));
            assert!(m.ratio() > 0.0 && m.ratio() < 3.0, "{algorithm}: {}", m.ratio());
        }
    }

    #[test]
    fn paper_ordering_holds_on_mips() {
        // The headline result: SADC < SAMC ≈ compress, Huffman worst among
        // the instruction-aware schemes, gzip strong.
        let text = encode_text(&generate_mips(Spec95::by_name("perl").unwrap(), 0.2));
        let ratio = |a| measure(a, Isa::Mips, &text, 32).unwrap().ratio();
        let huffman = ratio(Algorithm::ByteHuffman);
        let samc = ratio(Algorithm::Samc);
        let sadc = ratio(Algorithm::Sadc);
        assert!(samc < huffman, "SAMC {samc:.3} should beat byte-Huffman {huffman:.3}");
        assert!(sadc < huffman, "SADC {sadc:.3} should beat byte-Huffman {huffman:.3}");
        assert!(samc < 1.0 && sadc < 1.0 && huffman < 1.0, "all compress at real sizes");
    }

    #[test]
    fn empty_text_fails_cleanly() {
        for algorithm in [Algorithm::ByteHuffman, Algorithm::Samc, Algorithm::Sadc] {
            assert!(matches!(
                measure(algorithm, Isa::Mips, &[], 32),
                Err(CodecError::Train { .. })
            ));
        }
    }

    #[test]
    fn suite_runs_all_benchmarks() {
        let results = measure_suite(Algorithm::ByteHuffman, Isa::Mips, 0.02, 32).unwrap();
        assert_eq!(results.len(), 18);
        assert_eq!(results[0].benchmark, "applu");
    }

    #[test]
    fn worker_counts_agree_byte_for_byte() {
        let text = mips_text();
        for algorithm in [Algorithm::ByteHuffman, Algorithm::Samc, Algorithm::Sadc] {
            let serial = measure_with_workers(algorithm, Isa::Mips, &text, 32, 1).unwrap();
            for workers in [2, 8] {
                let parallel =
                    measure_with_workers(algorithm, Isa::Mips, &text, 32, workers).unwrap();
                assert_eq!(serial, parallel, "{algorithm} with {workers} workers");
            }
        }
    }

    #[test]
    fn algorithm_display_names() {
        assert_eq!(Algorithm::Samc.to_string(), "SAMC");
        assert_eq!(Algorithm::UnixCompress.to_string(), "compress");
    }
}

#[cfg(test)]
mod trait_assertions {
    //! C-SEND-SYNC: every long-lived public type must be shareable across
    //! threads (the parallel figure harness relies on it).

    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn public_types_are_send_and_sync() {
        assert_send_sync::<Algorithm>();
        assert_send_sync::<Measurement>();
        assert_send_sync::<CodecBuilder>();
        assert_send_sync::<CodecHandle>();
        assert_send_sync::<Box<dyn cce_codec::BlockCodec>>();
        assert_send_sync::<Box<dyn cce_codec::FileCodec>>();
        assert_send_sync::<cce_codec::BlockImage>();
        assert_send_sync::<cce_samc::SamcCodec>();
        assert_send_sync::<cce_samc::SamcConfig>();
        assert_send_sync::<cce_sadc::MipsSadc>();
        assert_send_sync::<cce_sadc::X86Sadc>();
        assert_send_sync::<cce_huffman::CodeBook>();
        assert_send_sync::<cce_huffman::DecodeTable>();
        assert_send_sync::<cce_huffman::block::ByteBlockCodec>();
        assert_send_sync::<cce_lz::Lzw>();
        assert_send_sync::<cce_lz::Gzip>();
        assert_send_sync::<cce_elf::ElfImage>();
        assert_send_sync::<cce_memsim::MemorySystem>();
        assert_send_sync::<cce_memsim::LineAddressTable>();
        assert_send_sync::<cce_workload::Program>();
        assert_send_sync::<cce_arith::BitEncoder>();
        assert_send_sync::<cce_arith::Prob>();
    }

    #[test]
    fn error_types_implement_error_send_sync() {
        fn assert_error<T: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<cce_codec::CodecError>();
        assert_error::<cce_huffman::BuildCodeBookError>();
        assert_error::<cce_huffman::DecodeSymbolError>();
        assert_error::<cce_lz::LzwDecodeError>();
        assert_error::<cce_lz::InflateError>();
        assert_error::<cce_elf::ParseElfError>();
        assert_error::<cce_isa::mips::DecodeInstructionError>();
        assert_error::<cce_isa::x86::DecodeLayoutError>();
        assert_error::<cce_bitstream::EndOfStreamError>();
    }
}
