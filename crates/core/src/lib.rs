//! Code compression for embedded systems — umbrella crate.
//!
//! This workspace reproduces *Code Compression for Embedded Systems*
//! (Lekatsas & Wolf, DAC 1998): two cache-line-random-access code
//! compressors for the Wolfe/Chanin compressed-code architecture, the
//! baselines they are measured against, and the memory system that runs
//! them.  This crate re-exports every subsystem and adds the measurement
//! harness used by the figure-regeneration binaries:
//!
//! * [`Algorithm`] — the five compressors of the paper's evaluation.
//! * [`measure`] — train, compress, **verify the round trip**, and report
//!   honest sizes (dictionary/model/table overheads included).
//! * [`measure_suite`] — run one algorithm over the whole SPEC95-like
//!   workload suite.
//!
//! Re-exports: [`samc`], [`sadc`], [`huffman`], [`lz`], [`arith`],
//! [`bitstream`], [`isa`], [`elf`], [`workload`], [`memsim`].
//!
//! # Examples
//!
//! ```
//! use cce_core::{measure, Algorithm};
//! use cce_core::isa::Isa;
//! use cce_core::workload::{generate_mips, Spec95};
//! use cce_core::isa::mips::encode_text;
//!
//! # fn main() -> Result<(), cce_core::MeasureError> {
//! let profile = Spec95::by_name("compress").expect("known benchmark");
//! let text = encode_text(&generate_mips(profile, 1.0));
//!
//! let m = measure(Algorithm::Samc, Isa::Mips, &text, 32)?;
//! assert!(m.ratio() < 1.0);
//! assert!(m.random_access());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stats;

pub use cce_arith as arith;
pub use cce_bitstream as bitstream;
pub use cce_elf as elf;
pub use cce_huffman as huffman;
pub use cce_isa as isa;
pub use cce_lz as lz;
pub use cce_memsim as memsim;
pub use cce_sadc as sadc;
pub use cce_samc as samc;
pub use cce_workload as workload;

use cce_huffman::block::ByteBlockCodec;
use cce_isa::Isa;
use cce_lz::{Gzip, Lzw};
use cce_sadc::{MipsSadc, MipsSadcConfig, X86Sadc, X86SadcConfig};
use cce_samc::{SamcCodec, SamcConfig};
use std::error::Error;
use std::fmt;

/// The compression algorithms compared in the paper's evaluation (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// UNIX `compress` (LZW) — file-oriented baseline.
    UnixCompress,
    /// `gzip` (LZ77 + Huffman) — file-oriented baseline.
    Gzip,
    /// Byte-based Huffman with block restart (Kozuch & Wolfe).
    ByteHuffman,
    /// SAMC — semiadaptive Markov compression (this paper).
    Samc,
    /// SADC — semiadaptive dictionary compression (this paper).
    Sadc,
}

impl Algorithm {
    /// All algorithms, in the figures' legend order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::UnixCompress,
        Algorithm::Gzip,
        Algorithm::ByteHuffman,
        Algorithm::Samc,
        Algorithm::Sadc,
    ];

    /// Whether this algorithm supports cache-block random access (the
    /// property a compressed-code memory system requires).
    pub fn random_access(self) -> bool {
        !matches!(self, Algorithm::UnixCompress | Algorithm::Gzip)
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Algorithm::UnixCompress => "compress",
            Algorithm::Gzip => "gzip",
            Algorithm::ByteHuffman => "huffman",
            Algorithm::Samc => "SAMC",
            Algorithm::Sadc => "SADC",
        };
        write!(f, "{name}")
    }
}

/// One verified compression measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    algorithm: Algorithm,
    isa: Isa,
    original_len: usize,
    compressed_len: usize,
    /// Per-block compressed sizes (random-access algorithms only).
    block_sizes: Option<Vec<usize>>,
    /// LAT size in bytes (random-access algorithms only).
    lat_bytes: Option<usize>,
}

impl Measurement {
    /// The measured algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The instruction set the text was compiled for.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// Uncompressed text size in bytes.
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// Compressed size in bytes, including all model/dictionary/table
    /// overheads the decompressor needs.
    pub fn compressed_len(&self) -> usize {
        self.compressed_len
    }

    /// Compression ratio (compressed / original); lower is better.
    pub fn ratio(&self) -> f64 {
        self.compressed_len as f64 / self.original_len as f64
    }

    /// Per-block compressed sizes, for driving the memory simulator.
    pub fn block_sizes(&self) -> Option<&[usize]> {
        self.block_sizes.as_deref()
    }

    /// LAT size in bytes (`None` for file-oriented algorithms).
    pub fn lat_bytes(&self) -> Option<usize> {
        self.lat_bytes
    }

    /// Whether the measured algorithm is block-random-access.
    pub fn random_access(&self) -> bool {
        self.algorithm.random_access()
    }
}

/// Errors from [`measure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeasureError {
    /// The codec could not be trained on this text.
    Train {
        /// The failing algorithm.
        algorithm: &'static str,
        /// The codec's own message.
        message: String,
    },
    /// Decompression did not reproduce the input — a codec bug, surfaced
    /// rather than reported as a (meaningless) ratio.
    RoundTripMismatch {
        /// The failing algorithm.
        algorithm: &'static str,
    },
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Train { algorithm, message } => {
                write!(f, "{algorithm}: training failed: {message}")
            }
            Self::RoundTripMismatch { algorithm } => {
                write!(f, "{algorithm}: decompressed text differs from the original")
            }
        }
    }
}

impl Error for MeasureError {}

fn train_err(algorithm: &'static str, e: impl fmt::Display) -> MeasureError {
    MeasureError::Train { algorithm, message: e.to_string() }
}

/// Compresses `text` with `algorithm`, verifies the round trip, and
/// returns the verified measurement.
///
/// `block_size` applies to the random-access algorithms (the paper uses
/// 32 bytes everywhere); the file-oriented baselines ignore it.
///
/// # Errors
///
/// See [`MeasureError`].
pub fn measure(
    algorithm: Algorithm,
    isa: Isa,
    text: &[u8],
    block_size: usize,
) -> Result<Measurement, MeasureError> {
    let (compressed_len, block_sizes, lat_bytes) = match algorithm {
        Algorithm::UnixCompress => {
            let codec = Lzw::new();
            let compressed = codec.compress(text);
            let back = codec.decompress(&compressed).map_err(|e| train_err("compress", e))?;
            if back != text {
                return Err(MeasureError::RoundTripMismatch { algorithm: "compress" });
            }
            (compressed.len(), None, None)
        }
        Algorithm::Gzip => {
            let codec = Gzip::new();
            let compressed = codec.compress(text);
            let back = codec.decompress(&compressed).map_err(|e| train_err("gzip", e))?;
            if back != text {
                return Err(MeasureError::RoundTripMismatch { algorithm: "gzip" });
            }
            (compressed.len(), None, None)
        }
        Algorithm::ByteHuffman => {
            let codec = ByteBlockCodec::train(text).map_err(|e| train_err("huffman", e))?;
            let image = codec.compress(text, block_size);
            let back = codec.decompress(&image).map_err(|e| train_err("huffman", e))?;
            if back != text {
                return Err(MeasureError::RoundTripMismatch { algorithm: "huffman" });
            }
            let sizes: Vec<usize> =
                (0..image.block_count()).map(|i| image.block(i).len()).collect();
            let lat = cce_memsim::LineAddressTable::from_block_sizes(sizes.iter().copied());
            (image.compressed_len(), Some(sizes), Some(lat.table_bytes()))
        }
        Algorithm::Samc => {
            let config = match isa {
                Isa::Mips => SamcConfig::mips(),
                Isa::X86 => SamcConfig::x86(),
            }
            .with_block_size(block_size);
            let codec = SamcCodec::train(text, config).map_err(|e| train_err("SAMC", e))?;
            let image = codec.compress(text);
            let back = codec.decompress(&image).map_err(|e| train_err("SAMC", e))?;
            if back != text {
                return Err(MeasureError::RoundTripMismatch { algorithm: "SAMC" });
            }
            let sizes: Vec<usize> =
                (0..image.block_count()).map(|i| image.block(i).len()).collect();
            (image.compressed_len(), Some(sizes), Some(image.lat_bytes()))
        }
        Algorithm::Sadc => match isa {
            Isa::Mips => {
                let config = MipsSadcConfig { block_size, ..Default::default() };
                let codec = MipsSadc::train(text, config).map_err(|e| train_err("SADC", e))?;
                let image = codec.compress(text);
                let back = codec.decompress(&image).map_err(|e| train_err("SADC", e))?;
                if back != text {
                    return Err(MeasureError::RoundTripMismatch { algorithm: "SADC" });
                }
                let sizes: Vec<usize> =
                    (0..image.block_count()).map(|i| image.block(i).len()).collect();
                (image.compressed_len(), Some(sizes), Some(image.lat_bytes()))
            }
            Isa::X86 => {
                let config = X86SadcConfig { block_size, ..Default::default() };
                let codec = X86Sadc::train(text, config).map_err(|e| train_err("SADC", e))?;
                let image = codec.compress(text);
                let back = codec.decompress(&image).map_err(|e| train_err("SADC", e))?;
                if back != text {
                    return Err(MeasureError::RoundTripMismatch { algorithm: "SADC" });
                }
                let sizes: Vec<usize> =
                    (0..image.block_count()).map(|i| image.block(i).len()).collect();
                (image.compressed_len(), Some(sizes), Some(image.lat_bytes()))
            }
        },
    };
    Ok(Measurement {
        algorithm,
        isa,
        original_len: text.len(),
        compressed_len,
        block_sizes,
        lat_bytes,
    })
}

/// One benchmark's verified measurement within a suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteMeasurement {
    /// SPEC95 benchmark name.
    pub benchmark: &'static str,
    /// The verified measurement.
    pub measurement: Measurement,
}

/// Runs `algorithm` over the whole SPEC95-like suite for `isa`.
///
/// `scale` is forwarded to the workload generator (1.0 reproduces the
/// figures; smaller values are handy in tests).
///
/// # Errors
///
/// Fails on the first benchmark whose measurement fails.
pub fn measure_suite(
    algorithm: Algorithm,
    isa: Isa,
    scale: f64,
    block_size: usize,
) -> Result<Vec<SuiteMeasurement>, MeasureError> {
    cce_workload::spec95_suite(isa, scale)
        .into_iter()
        .map(|program| {
            measure(algorithm, isa, &program.text, block_size)
                .map(|measurement| SuiteMeasurement { benchmark: program.name, measurement })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cce_isa::mips::encode_text;
    use cce_workload::{generate_mips, generate_x86, Spec95};

    fn mips_text() -> Vec<u8> {
        encode_text(&generate_mips(Spec95::by_name("ijpeg").unwrap(), 0.05))
    }

    fn x86_text() -> Vec<u8> {
        generate_x86(Spec95::by_name("ijpeg").unwrap(), 0.05)
    }

    #[test]
    fn every_algorithm_measures_mips() {
        let text = mips_text();
        for algorithm in Algorithm::ALL {
            let m = measure(algorithm, Isa::Mips, &text, 32)
                .unwrap_or_else(|e| panic!("{algorithm}: {e}"));
            // At this tiny test scale the fixed model/table overheads can
            // exceed the text; only sanity-check here (ratios at realistic
            // sizes are asserted in `paper_ordering_holds_on_mips`).
            assert!(m.ratio() > 0.0 && m.ratio() < 3.0, "{algorithm}: {}", m.ratio());
            assert_eq!(m.original_len(), text.len());
            assert_eq!(m.random_access(), algorithm.random_access());
            assert_eq!(m.block_sizes().is_some(), algorithm.random_access());
            assert_eq!(m.lat_bytes().is_some(), algorithm.random_access());
        }
    }

    #[test]
    fn every_algorithm_measures_x86() {
        let text = x86_text();
        for algorithm in Algorithm::ALL {
            let m = measure(algorithm, Isa::X86, &text, 32)
                .unwrap_or_else(|e| panic!("{algorithm}: {e}"));
            assert!(m.ratio() > 0.0 && m.ratio() < 3.0, "{algorithm}: {}", m.ratio());
        }
    }

    #[test]
    fn paper_ordering_holds_on_mips() {
        // The headline result: SADC < SAMC ≈ compress, Huffman worst among
        // the instruction-aware schemes, gzip strong.
        let text = encode_text(&generate_mips(Spec95::by_name("perl").unwrap(), 0.2));
        let ratio = |a| measure(a, Isa::Mips, &text, 32).unwrap().ratio();
        let huffman = ratio(Algorithm::ByteHuffman);
        let samc = ratio(Algorithm::Samc);
        let sadc = ratio(Algorithm::Sadc);
        assert!(samc < huffman, "SAMC {samc:.3} should beat byte-Huffman {huffman:.3}");
        assert!(sadc < huffman, "SADC {sadc:.3} should beat byte-Huffman {huffman:.3}");
        assert!(samc < 1.0 && sadc < 1.0 && huffman < 1.0, "all compress at real sizes");
    }

    #[test]
    fn empty_text_fails_cleanly() {
        for algorithm in [Algorithm::ByteHuffman, Algorithm::Samc, Algorithm::Sadc] {
            assert!(matches!(
                measure(algorithm, Isa::Mips, &[], 32),
                Err(MeasureError::Train { .. })
            ));
        }
    }

    #[test]
    fn suite_runs_all_benchmarks() {
        let results = measure_suite(Algorithm::ByteHuffman, Isa::Mips, 0.02, 32).unwrap();
        assert_eq!(results.len(), 18);
        assert_eq!(results[0].benchmark, "applu");
    }

    #[test]
    fn algorithm_display_names() {
        assert_eq!(Algorithm::Samc.to_string(), "SAMC");
        assert_eq!(Algorithm::UnixCompress.to_string(), "compress");
    }
}

#[cfg(test)]
mod trait_assertions {
    //! C-SEND-SYNC: every long-lived public type must be shareable across
    //! threads (the parallel figure harness relies on it).

    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn public_types_are_send_and_sync() {
        assert_send_sync::<Algorithm>();
        assert_send_sync::<Measurement>();
        assert_send_sync::<MeasureError>();
        assert_send_sync::<cce_samc::SamcCodec>();
        assert_send_sync::<cce_samc::SamcImage>();
        assert_send_sync::<cce_samc::SamcConfig>();
        assert_send_sync::<cce_sadc::MipsSadc>();
        assert_send_sync::<cce_sadc::X86Sadc>();
        assert_send_sync::<cce_sadc::SadcImage>();
        assert_send_sync::<cce_huffman::CodeBook>();
        assert_send_sync::<cce_huffman::DecodeTable>();
        assert_send_sync::<cce_huffman::block::ByteBlockCodec>();
        assert_send_sync::<cce_lz::Lzw>();
        assert_send_sync::<cce_lz::Gzip>();
        assert_send_sync::<cce_elf::ElfImage>();
        assert_send_sync::<cce_memsim::MemorySystem>();
        assert_send_sync::<cce_memsim::LineAddressTable>();
        assert_send_sync::<cce_workload::Program>();
        assert_send_sync::<cce_arith::BitEncoder>();
        assert_send_sync::<cce_arith::Prob>();
    }

    #[test]
    fn error_types_implement_error_send_sync() {
        fn assert_error<T: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<MeasureError>();
        assert_error::<cce_samc::TrainCodecError>();
        assert_error::<cce_samc::DecompressBlockError>();
        assert_error::<cce_samc::ReadFormatError>();
        assert_error::<cce_sadc::TrainSadcError>();
        assert_error::<cce_sadc::TrainX86SadcError>();
        assert_error::<cce_sadc::DecompressSadcError>();
        assert_error::<cce_sadc::ReadSadcError>();
        assert_error::<cce_huffman::BuildCodeBookError>();
        assert_error::<cce_huffman::DecodeSymbolError>();
        assert_error::<cce_lz::LzwDecodeError>();
        assert_error::<cce_lz::InflateError>();
        assert_error::<cce_elf::ParseElfError>();
        assert_error::<cce_isa::mips::DecodeInstructionError>();
        assert_error::<cce_isa::x86::DecodeLayoutError>();
        assert_error::<cce_bitstream::EndOfStreamError>();
    }
}
