//! Entropy diagnostics for program text.
//!
//! The paper's §3 chooses stream divisions by entropy and bit correlation;
//! these helpers expose the same quantities for any text section, so users
//! can see *why* a program compresses the way it does (and sanity-check
//! synthetic corpora against real binaries).

use cce_isa::mips::{decode_text, DecodeInstructionError};
use std::collections::{BTreeMap, HashMap};

/// Shannon entropy of the byte distribution, in bits per byte (0..=8).
///
/// # Examples
///
/// ```
/// use cce_core::stats::byte_entropy;
///
/// assert_eq!(byte_entropy(&[7; 100]), 0.0);
/// assert!(byte_entropy(&(0..=255u8).collect::<Vec<_>>()) > 7.99);
/// ```
pub fn byte_entropy(text: &[u8]) -> f64 {
    if text.is_empty() {
        return 0.0;
    }
    let mut counts = [0u64; 256];
    for &b in text {
        counts[usize::from(b)] += 1;
    }
    entropy_of_counts(counts.iter().copied(), text.len() as u64)
}

/// Per-byte-position entropy for text framed in `stride`-byte records
/// (e.g. `stride = 4` for MIPS words).  Position 0 is the record's first
/// byte.  Returns one entry per position.
///
/// # Panics
///
/// Panics if `stride == 0`.
pub fn position_entropy(text: &[u8], stride: usize) -> Vec<f64> {
    assert!(stride > 0, "stride must be positive");
    let mut counts = vec![[0u64; 256]; stride];
    let mut totals = vec![0u64; stride];
    for (i, &b) in text.iter().enumerate() {
        counts[i % stride][usize::from(b)] += 1;
        totals[i % stride] += 1;
    }
    counts.iter().zip(&totals).map(|(c, &n)| entropy_of_counts(c.iter().copied(), n)).collect()
}

/// Fraction of `stride`-byte records that are exact repeats of an earlier
/// record — the verbatim redundancy LZ coders exploit and field-statistical
/// coders (SAMC) do not.
///
/// # Panics
///
/// Panics if `stride == 0`.
pub fn repeat_ratio(text: &[u8], stride: usize) -> f64 {
    assert!(stride > 0, "stride must be positive");
    let records: Vec<&[u8]> = text.chunks_exact(stride).collect();
    if records.is_empty() {
        return 0.0;
    }
    let mut seen = HashMap::new();
    let mut repeats = 0usize;
    for &r in &records {
        if *seen.entry(r).or_insert(0u32) > 0 {
            repeats += 1;
        }
        *seen.get_mut(r).expect("just inserted") += 1;
    }
    repeats as f64 / records.len() as f64
}

/// MIPS-specific field statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct MipsFieldStats {
    /// Number of instructions analyzed.
    pub instructions: usize,
    /// Distinct simplified opcodes used (the paper: benchmarks "tend to
    /// use no more than 50 instructions").
    pub distinct_operations: usize,
    /// Entropy of the simplified-opcode distribution, bits/instruction.
    pub opcode_entropy: f64,
    /// Entropy of the register-field byte distribution, bits/field.
    pub register_entropy: f64,
    /// Entropy of the 16-bit immediates (as whole values), bits/immediate.
    pub imm16_entropy: f64,
    /// Estimated field-statistical compression bound, bits/instruction:
    /// the sum of per-field entropies an order-0 field coder pays.
    pub field_bits_per_instruction: f64,
}

/// Computes per-field statistics for a MIPS text section.
///
/// # Errors
///
/// Returns the first undecodable word.
pub fn mips_field_stats(text: &[u8]) -> Result<MipsFieldStats, DecodeInstructionError> {
    let instructions = decode_text(text)?;
    let mut op_counts: BTreeMap<u8, u64> = BTreeMap::new();
    let mut reg_counts = [0u64; 32];
    let mut reg_total = 0u64;
    let mut imm_counts: BTreeMap<u16, u64> = BTreeMap::new();
    let mut imm26_count = 0u64;
    for insn in &instructions {
        *op_counts.entry(insn.operation().id()).or_insert(0) += 1;
        for r in insn.register_fields() {
            reg_counts[usize::from(r)] += 1;
            reg_total += 1;
        }
        if let Some(imm) = insn.imm16() {
            *imm_counts.entry(imm).or_insert(0) += 1;
        }
        if insn.imm26().is_some() {
            imm26_count += 1;
        }
    }
    let n = instructions.len() as u64;
    let opcode_entropy = entropy_of_counts(op_counts.values().copied(), n);
    let register_entropy = entropy_of_counts(reg_counts.iter().copied(), reg_total);
    let imm_total: u64 = imm_counts.values().sum();
    let imm16_entropy = entropy_of_counts(imm_counts.values().copied(), imm_total);

    // Field coder cost per instruction: opcode + its register fields +
    // immediates (26-bit targets charged at their raw width as an upper
    // bound — they are program addresses).
    let field_bits = opcode_entropy
        + register_entropy * (reg_total as f64 / n.max(1) as f64)
        + imm16_entropy * (imm_total as f64 / n.max(1) as f64)
        + 26.0 * (imm26_count as f64 / n.max(1) as f64);

    Ok(MipsFieldStats {
        instructions: instructions.len(),
        distinct_operations: op_counts.len(),
        opcode_entropy,
        register_entropy,
        imm16_entropy,
        field_bits_per_instruction: field_bits,
    })
}

fn entropy_of_counts<I: IntoIterator<Item = u64>>(counts: I, total: u64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .into_iter()
        .filter(|&c| c > 0)
        .map(|c| {
            let p = c as f64 / total;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cce_isa::mips::{encode_text, Instruction, Reg};

    #[test]
    fn constant_text_has_zero_entropy() {
        assert_eq!(byte_entropy(&[42; 512]), 0.0);
        assert_eq!(byte_entropy(&[]), 0.0);
    }

    #[test]
    fn two_symbol_text_has_one_bit() {
        let text: Vec<u8> = (0..1000).map(|i| (i % 2) as u8).collect();
        assert!((byte_entropy(&text) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn position_entropy_separates_fields() {
        // Records: byte 0 constant, byte 1 uniform over 16 values.
        let text: Vec<u8> = (0..4096).flat_map(|i| [0xAAu8, (i % 16) as u8]).collect();
        let positions = position_entropy(&text, 2);
        assert_eq!(positions.len(), 2);
        assert!(positions[0] < 1e-9);
        assert!((positions[1] - 4.0).abs() < 0.01);
    }

    #[test]
    fn repeat_ratio_bounds() {
        assert_eq!(repeat_ratio(&[1, 2, 3, 4], 4), 0.0);
        let repeated: Vec<u8> = [1u8, 2, 3, 4].repeat(10);
        assert!((repeat_ratio(&repeated, 4) - 0.9).abs() < 1e-9);
        assert_eq!(repeat_ratio(&[], 4), 0.0);
    }

    #[test]
    fn mips_stats_on_a_tiny_program() {
        let text = encode_text(&[
            Instruction::addiu(Reg::SP, Reg::SP, 0xFFF8),
            Instruction::sw(Reg::RA, 4, Reg::SP),
            Instruction::lw(Reg::RA, 4, Reg::SP),
            Instruction::jr(Reg::RA),
        ]);
        let stats = mips_field_stats(&text).unwrap();
        assert_eq!(stats.instructions, 4);
        assert_eq!(stats.distinct_operations, 4);
        assert!(stats.opcode_entropy > 1.9); // 4 distinct ops of 4
        assert!(stats.field_bits_per_instruction > 0.0);
    }

    #[test]
    fn undecodable_text_is_an_error() {
        assert!(mips_field_stats(&[0xFF; 4]).is_err());
    }

    #[test]
    fn suite_field_entropy_is_compiler_like() {
        // Sanity band on the synthetic corpus: compiled MIPS code has
        // opcode entropy around 3-5 bits and uses well under 50 ops.
        let program = &cce_workload::spec95_suite(cce_isa::Isa::Mips, 0.1)[5];
        let stats = mips_field_stats(&program.text).unwrap();
        assert!(stats.distinct_operations <= 50, "{}", stats.distinct_operations);
        assert!(
            (2.0..=5.5).contains(&stats.opcode_entropy),
            "opcode entropy {}",
            stats.opcode_entropy
        );
        assert!(
            (2.5..=5.0).contains(&stats.register_entropy),
            "register entropy {}",
            stats.register_entropy
        );
    }
}
