//! Bounded-memory ELF → `.cce` compression: the bridge between the
//! streaming ELF walker ([`cce_elf::ElfStream`]), the ordered block
//! pipeline ([`cce_codec::run_pipeline`]), and the incremental v2
//! container writer ([`ContainerWriter`]).
//!
//! The compression pass never holds the text section in memory: blocks
//! flow from the section extent through a reusable read buffer
//! ([`cce_codec::ReadSource`]), fan out across the worker pool (each
//! worker round-trip-verifies its own block), and land in the container
//! in index order as the pipeline drains.  Peak memory is the pipeline's
//! bounded reorder window plus 16 index bytes per block.
//!
//! The one deliberate concession is **training**: every model builder in
//! the workspace (SAMC arithmetic models, SADC dictionaries, Huffman
//! code books) derives statistics from the whole text, so
//! [`buffered_text`] reads the section once into memory for the training
//! pass.  The buffer is dropped before compression begins; the
//! compression pass re-reads the section from the stream.

use std::io::{Read, Seek, Write};

use crate::container::{lat_bytes_for, ContainerIdentity, ContainerSummary, ContainerWriter};
use crate::registry::Algorithm;
use crate::Measurement;
use cce_codec::pipeline::{BlockSink, CompressedBlock};
use cce_codec::{run_pipeline, BlockCodec, CodecError, PipelineConfig, PipelineStats, ReadSource};
use cce_elf::{ElfStream, Machine, SectionKind, StreamElfError};
use cce_isa::Isa;

/// Name used in errors raised by the streaming bridge itself.
const SELF: &str = "elf stream";

/// Maps a streaming-walker failure into the workspace error type.
pub fn stream_error(e: StreamElfError) -> CodecError {
    CodecError::corrupt(SELF, e.to_string())
}

/// The instruction set implied by the ELF machine field.
///
/// # Errors
///
/// [`CodecError::Unsupported`] for machines no registered codec targets.
pub fn isa_of<R: Read + Seek>(elf: &ElfStream<R>) -> Result<Isa, CodecError> {
    match elf.machine() {
        Machine::Mips => Ok(Isa::Mips),
        Machine::I386 => Ok(Isa::X86),
        Machine::Other(m) => {
            Err(CodecError::unsupported(SELF, format!("unsupported ELF machine {m:#06x}")))
        }
    }
}

/// The container identity for compressing `elf` with `algorithm`.
///
/// # Errors
///
/// As [`isa_of`].
pub fn identity_of<R: Read + Seek>(
    elf: &ElfStream<R>,
    algorithm: Algorithm,
) -> Result<ContainerIdentity, CodecError> {
    Ok(ContainerIdentity {
        algorithm,
        isa: isa_of(elf)?,
        class: elf.class(),
        endianness: elf.endianness(),
        entry: elf.entry(),
    })
}

/// Index of the `.text` section.
///
/// # Errors
///
/// [`CodecError::Corrupt`] when the ELF has no `.text` section.
pub fn text_index<R: Read + Seek>(elf: &ElfStream<R>) -> Result<usize, CodecError> {
    elf.text_index().ok_or_else(|| CodecError::corrupt(SELF, "elf has no .text section"))
}

/// Reads the whole `.text` section into memory — the **training pass**.
///
/// Model builders need full-text statistics, so this is the one place
/// the streaming path buffers the section; drop the returned buffer
/// before streaming the compression pass.
///
/// # Errors
///
/// [`CodecError::Corrupt`] on a missing `.text` section or read failure.
pub fn buffered_text<R: Read + Seek>(elf: &mut ElfStream<R>) -> Result<Vec<u8>, CodecError> {
    let index = text_index(elf)?;
    let mut reader = elf.section_reader(index).map_err(stream_error)?;
    let mut text = Vec::new();
    reader
        .read_to_end(&mut text)
        .map_err(|e| CodecError::corrupt(SELF, format!("reading .text: {e}")))?;
    Ok(text)
}

/// One section's identity and size, for the per-section reports the
/// `--elf` CLI paths print.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionStat {
    /// Section name (e.g. `.text`).
    pub name: String,
    /// Section size in bytes (`sh_size`).
    pub size: u64,
    /// Load address.
    pub addr: u64,
    /// Whether the section occupies file bytes (`false` for `.bss`).
    pub in_file: bool,
    /// Whether this is the compressed (`.text`) section.
    pub is_text: bool,
}

/// Per-section statistics of `elf`, in section-header order.
pub fn section_stats<R: Read + Seek>(elf: &ElfStream<R>) -> Vec<SectionStat> {
    let text = elf.text_index();
    elf.sections()
        .iter()
        .enumerate()
        .map(|(index, section)| SectionStat {
            name: section.name.clone(),
            size: section.size,
            addr: section.addr,
            in_file: section.kind != SectionKind::NoBits,
            is_text: Some(index) == text,
        })
        .collect()
}

/// What one streaming compression produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamReport {
    /// Pipeline throughput counters (blocks, bytes, peak queue depth).
    pub stats: PipelineStats,
    /// Finished-container size accounting.
    pub summary: ContainerSummary,
}

/// Streams `elf`'s `.text` section through the block pipeline into a v2
/// container on `out` — the **compression pass**.
///
/// `codec` must already be trained (see [`buffered_text`]; the CLI may
/// instead hit its model cache).  Every worker round-trip-verifies the
/// block it compressed, replacing the whole-image verify of the buffered
/// path, so a lying codec fails here rather than producing a bad
/// artifact.
///
/// # Errors
///
/// Propagates walker, codec, verification, and output-write failures;
/// the artifact is incomplete on error (callers write to a temp path and
/// rename on success).
pub fn compress_elf<R: Read + Seek, W: Write>(
    elf: &mut ElfStream<R>,
    algorithm: Algorithm,
    codec: &dyn BlockCodec,
    out: W,
    workers: usize,
) -> Result<StreamReport, CodecError> {
    let identity = identity_of(elf, algorithm)?;
    let index = text_index(elf)?;
    let mut writer = ContainerWriter::new(
        out,
        identity,
        codec.block_size(),
        codec.model_bytes(),
        &codec.to_bytes(),
    )?;
    let reader = elf.section_reader(index).map_err(stream_error)?;
    let mut source = ReadSource::new(reader, codec.chunker());
    let config = PipelineConfig::with_workers(workers).verified();
    let stats = run_pipeline(codec, &mut source, &mut writer, &config)?;
    let summary = writer.finish()?;
    Ok(StreamReport { stats, summary })
}

/// A [`BlockSink`] that keeps only per-block sizes — the landing pad for
/// ratio measurement, where no artifact is wanted.
struct MeasureSink {
    sizes: Vec<usize>,
}

impl BlockSink for MeasureSink {
    fn accept(&mut self, block: CompressedBlock) -> Result<(), CodecError> {
        self.sizes.push(block.data.len());
        Ok(())
    }
}

/// Measures one algorithm over `elf`'s `.text` section.
///
/// Block algorithms stream the compression pass (training buffers the
/// text once, as everywhere); the compressed bytes are counted, not
/// kept, and every block is round-trip-verified in its worker.  File
/// baselines have no streaming decoder, so they are measured on the
/// buffered text — a measurement-only concession.
///
/// The result uses the same accounting as the buffered
/// [`measure`](crate::measure) path, so streamed and in-memory ratios
/// are directly comparable (pinned against each other in
/// `tests/streaming.rs`).
///
/// # Errors
///
/// As [`measure`](crate::measure), plus walker failures.
pub fn measure_elf<R: Read + Seek>(
    elf: &mut ElfStream<R>,
    algorithm: Algorithm,
    block_size: usize,
    workers: usize,
) -> Result<Measurement, CodecError> {
    let isa = isa_of(elf)?;
    let text = buffered_text(elf)?;
    if !algorithm.random_access() {
        // File codecs decode front to back only; buffered measurement is
        // the honest description of how they would run.
        return crate::measure_with_workers(algorithm, isa, &text, block_size, workers);
    }
    let handle = algorithm.build(isa, block_size).train(&text)?;
    let codec = handle.as_block().ok_or_else(|| {
        CodecError::corrupt(SELF, "registry built a non-block codec for a random-access tag")
    })?;
    let original_len = text.len();
    drop(text);

    let index = text_index(elf)?;
    let reader = elf.section_reader(index).map_err(stream_error)?;
    let mut source = ReadSource::new(reader, codec.chunker());
    let mut sink = MeasureSink { sizes: Vec::new() };
    let config = PipelineConfig::with_workers(workers).verified();
    run_pipeline(codec, &mut source, &mut sink, &config)?;

    let data_len: usize = sink.sizes.iter().sum();
    Ok(Measurement {
        algorithm,
        isa,
        original_len,
        compressed_len: data_len + codec.model_bytes(),
        lat_bytes: Some(lat_bytes_for(sink.sizes.len(), data_len)),
        block_sizes: Some(sink.sizes),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cce_elf::{Class, ElfImage, Endianness};
    use cce_workload::{generate_mips, Spec95};
    use std::io::Cursor;

    fn sample_elf() -> Vec<u8> {
        let profile = Spec95::by_name("ijpeg").unwrap();
        let text = cce_isa::mips::encode_text(&generate_mips(profile, 0.05));
        ElfImage::new_executable(cce_elf::Machine::Mips, Class::Elf32, Endianness::Big, text)
            .to_bytes()
    }

    #[test]
    fn identity_reflects_the_elf() {
        let bytes = sample_elf();
        let elf = ElfStream::open(Cursor::new(&bytes)).unwrap();
        let identity = identity_of(&elf, Algorithm::Samc).unwrap();
        assert_eq!(identity.isa, Isa::Mips);
        assert_eq!(identity.class, Class::Elf32);
        assert_eq!(identity.endianness, Endianness::Big);
        assert_eq!(identity.entry, elf.entry());
    }

    #[test]
    fn section_stats_flag_the_text_section() {
        let bytes = sample_elf();
        let elf = ElfStream::open(Cursor::new(&bytes)).unwrap();
        let stats = section_stats(&elf);
        let text: Vec<_> = stats.iter().filter(|s| s.is_text).collect();
        assert_eq!(text.len(), 1);
        assert_eq!(text[0].name, ".text");
        assert!(text[0].size > 0 && text[0].in_file);
    }

    #[test]
    fn streamed_measurement_matches_buffered() {
        let bytes = sample_elf();
        let mut elf = ElfStream::open(Cursor::new(&bytes)).unwrap();
        let text = buffered_text(&mut elf).unwrap();
        for algorithm in Algorithm::ALL {
            let streamed = measure_elf(&mut elf, algorithm, 32, 2)
                .unwrap_or_else(|e| panic!("{algorithm}: {e}"));
            let buffered = crate::measure_with_workers(algorithm, Isa::Mips, &text, 32, 2).unwrap();
            assert_eq!(streamed, buffered, "{algorithm}");
        }
    }

    #[test]
    fn unsupported_machine_is_a_typed_error() {
        let profile = Spec95::by_name("ijpeg").unwrap();
        let text = cce_isa::mips::encode_text(&generate_mips(profile, 0.02));
        let bytes = ElfImage::new_executable(
            cce_elf::Machine::Other(0x1234),
            Class::Elf32,
            Endianness::Big,
            text,
        )
        .to_bytes();
        let elf = ElfStream::open(Cursor::new(&bytes)).unwrap();
        assert!(matches!(isa_of(&elf), Err(CodecError::Unsupported { .. })));
    }
}
