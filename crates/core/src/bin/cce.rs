//! `cce` — command-line front end for the code-compression toolkit.
//!
//! ```text
//! cce ratio <input.elf>                      # compare all five algorithms
//! cce compress [-a samc|sadc] [-b BLOCK] <input.elf> -o <out.cce>
//! cce decompress <in.cce> -o <out.elf>       # rebuild a minimal ELF
//! cce info <in.cce>                          # inspect a compressed artifact
//! ```
//!
//! The `.cce` container holds the trained codec (Markov tables or
//! dictionary+code tables), the block image, and enough ELF identity to
//! rebuild a loadable executable around the decompressed text section.

use cce_core::elf::{Class, ElfImage, Endianness, Machine};
use cce_core::isa::Isa;
use cce_core::sadc::{MipsSadc, MipsSadcConfig, SadcImage, X86Sadc, X86SadcConfig};
use cce_core::samc::{SamcCodec, SamcConfig, SamcImage};
use cce_core::{measure, Algorithm};
use std::error::Error;
use std::process::ExitCode;

const CONTAINER_MAGIC: &[u8; 4] = b"CCEF";

/// Which codec a container holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CodecKind {
    Samc,
    SadcMips,
    SadcX86,
}

impl CodecKind {
    fn tag(self) -> u8 {
        match self {
            CodecKind::Samc => 0,
            CodecKind::SadcMips => 1,
            CodecKind::SadcX86 => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => CodecKind::Samc,
            1 => CodecKind::SadcMips,
            2 => CodecKind::SadcX86,
            _ => return None,
        })
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cce: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn Error>> {
    match args.first().map(String::as_str) {
        Some("ratio") => ratio(&args[1..]),
        Some("compress") => compress(&args[1..]),
        Some("decompress") => decompress(&args[1..]),
        Some("info") => info(&args[1..]),
        Some("analyze") => analyze(&args[1..]),
        Some("disasm") => disasm(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `cce help`)").into()),
    }
}

fn print_usage() {
    println!("cce — code compression for embedded systems (SAMC/SADC, DAC 1998)");
    println!();
    println!("USAGE:");
    println!("  cce ratio <input.elf>                         compare all algorithms");
    println!("  cce compress [-a samc|sadc] [-b N] <in.elf> -o <out.cce>");
    println!("  cce decompress <in.cce> -o <out.elf>");
    println!("  cce info <in.cce>");
    println!("  cce analyze <input.elf>                       entropy diagnostics");
    println!("  cce disasm <input.elf> [-n COUNT]             disassemble (MIPS only)");
}

/// Parsed command-line flags.
struct Flags<'a> {
    positional: Vec<&'a str>,
    output: Option<&'a str>,
    algorithm: Option<&'a str>,
    block_size: usize,
}

/// Parses `-o out` plus positional arguments.
fn split_flags(args: &[String]) -> Result<Flags<'_>, String> {
    let mut positional = Vec::new();
    let mut output = None;
    let mut algorithm = None;
    let mut block_size = 32usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" | "--output" => {
                output = Some(args.get(i + 1).ok_or("missing value after -o")?.as_str());
                i += 2;
            }
            "-a" | "--algorithm" => {
                algorithm = Some(args.get(i + 1).ok_or("missing value after -a")?.as_str());
                i += 2;
            }
            "-n" | "--count" => {
                block_size = args
                    .get(i + 1)
                    .ok_or("missing value after -n")?
                    .parse()
                    .map_err(|_| "count must be an integer")?;
                i += 2;
            }
            "-b" | "--block-size" => {
                block_size = args
                    .get(i + 1)
                    .ok_or("missing value after -b")?
                    .parse()
                    .map_err(|_| "block size must be an integer")?;
                i += 2;
            }
            other => {
                positional.push(other);
                i += 1;
            }
        }
    }
    Ok(Flags { positional, output, algorithm, block_size })
}

fn load_elf(path: &str) -> Result<(ElfImage, Isa), Box<dyn Error>> {
    let bytes = std::fs::read(path)?;
    let image = ElfImage::parse(&bytes)?;
    let isa = match image.machine {
        Machine::Mips => Isa::Mips,
        Machine::I386 => Isa::X86,
        Machine::Other(m) => return Err(format!("unsupported e_machine {m}").into()),
    };
    Ok((image, isa))
}

fn ratio(args: &[String]) -> Result<(), Box<dyn Error>> {
    let flags = split_flags(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err("usage: cce ratio <input.elf>".into());
    };
    let (elf, isa) = load_elf(path)?;
    let text = elf.text().ok_or("no .text section")?;
    println!("{path}: {} bytes of {isa} text", text.len());
    println!("{:<10} {:>12} {:>8}", "algorithm", "compressed", "ratio");
    for algorithm in Algorithm::ALL {
        match measure(algorithm, isa, text, 32) {
            Ok(m) => println!(
                "{:<10} {:>12} {:>8.3}",
                algorithm.to_string(),
                m.compressed_len(),
                m.ratio()
            ),
            Err(e) => println!("{:<10} failed: {e}", algorithm.to_string()),
        }
    }
    Ok(())
}

fn compress(args: &[String]) -> Result<(), Box<dyn Error>> {
    let Flags { positional, output, algorithm, block_size } = split_flags(args)?;
    let [path] = positional.as_slice() else {
        return Err("usage: cce compress [-a samc|sadc] [-b N] <in.elf> -o <out.cce>".into());
    };
    let output = output.ok_or("missing -o <out.cce>")?;
    let (elf, isa) = load_elf(path)?;
    let text = elf.text().ok_or("no .text section")?.to_vec();

    let (kind, codec_bytes, image_bytes, ratio) = match algorithm.unwrap_or("samc") {
        "samc" => {
            let config = match isa {
                Isa::Mips => SamcConfig::mips(),
                Isa::X86 => SamcConfig::x86(),
            }
            .with_block_size(block_size);
            let codec = SamcCodec::train(&text, config)?;
            let image = codec.compress(&text);
            if codec.decompress(&image)? != text {
                return Err("internal error: round trip failed".into());
            }
            (CodecKind::Samc, codec.to_bytes(), image.to_bytes(), image.ratio())
        }
        "sadc" => match isa {
            Isa::Mips => {
                let config = MipsSadcConfig { block_size, ..Default::default() };
                let codec = MipsSadc::train(&text, config)?;
                let image = codec.compress(&text);
                if codec.decompress(&image)? != text {
                    return Err("internal error: round trip failed".into());
                }
                (CodecKind::SadcMips, codec.to_bytes(), image.to_bytes(), image.ratio())
            }
            Isa::X86 => {
                let config = X86SadcConfig { block_size, ..Default::default() };
                let codec = X86Sadc::train(&text, config)?;
                let image = codec.compress(&text);
                if codec.decompress(&image)? != text {
                    return Err("internal error: round trip failed".into());
                }
                (CodecKind::SadcX86, codec.to_bytes(), image.to_bytes(), image.ratio())
            }
        },
        other => return Err(format!("unknown algorithm `{other}` (samc|sadc)").into()),
    };

    // Container: magic, codec kind, ELF identity, codec, image.
    let mut out = Vec::new();
    out.extend_from_slice(CONTAINER_MAGIC);
    out.push(kind.tag());
    out.push(match isa {
        Isa::Mips => 0,
        Isa::X86 => 1,
    });
    out.push(match elf.class {
        Class::Elf32 => 0,
        Class::Elf64 => 1,
    });
    out.push(match elf.endianness {
        Endianness::Little => 0,
        Endianness::Big => 1,
    });
    out.extend_from_slice(&elf.entry.to_be_bytes());
    out.extend_from_slice(&(codec_bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(&codec_bytes);
    out.extend_from_slice(&image_bytes);
    std::fs::write(output, &out)?;
    println!(
        "{path}: {} -> {} bytes (text ratio {ratio:.3}, artifact {} bytes)",
        text.len(),
        codec_bytes.len() + image_bytes.len(),
        out.len()
    );
    Ok(())
}

/// A parsed `.cce` container.
struct Container<'a> {
    kind: CodecKind,
    isa: Isa,
    class: Class,
    endianness: Endianness,
    entry: u64,
    codec_bytes: &'a [u8],
    image_bytes: &'a [u8],
}

/// Parses a `.cce` container into its parts.
fn parse_container(bytes: &[u8]) -> Result<Container<'_>, Box<dyn Error>> {
    if bytes.len() < 20 || &bytes[0..4] != CONTAINER_MAGIC {
        return Err("not a cce container".into());
    }
    let kind = CodecKind::from_tag(bytes[4]).ok_or("unknown codec tag")?;
    let isa = match bytes[5] {
        0 => Isa::Mips,
        1 => Isa::X86,
        _ => return Err("unknown isa tag".into()),
    };
    let class = if bytes[6] == 0 { Class::Elf32 } else { Class::Elf64 };
    let endianness = if bytes[7] == 0 { Endianness::Little } else { Endianness::Big };
    let entry = u64::from_be_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let codec_len = u32::from_be_bytes(bytes[16..20].try_into().expect("4 bytes")) as usize;
    let rest = &bytes[20..];
    if rest.len() < codec_len {
        return Err("container truncated".into());
    }
    let (codec_bytes, image_bytes) = rest.split_at(codec_len);
    Ok(Container { kind, isa, class, endianness, entry, codec_bytes, image_bytes })
}

fn decompress(args: &[String]) -> Result<(), Box<dyn Error>> {
    let Flags { positional, output, .. } = split_flags(args)?;
    let [path] = positional.as_slice() else {
        return Err("usage: cce decompress <in.cce> -o <out.elf>".into());
    };
    let output = output.ok_or("missing -o <out.elf>")?;
    let bytes = std::fs::read(path)?;
    let Container { kind, isa, class, endianness, entry, codec_bytes, image_bytes } =
        parse_container(&bytes)?;

    let text = match kind {
        CodecKind::Samc => {
            let codec = SamcCodec::from_bytes(codec_bytes)?;
            let image = SamcImage::from_bytes(image_bytes)?;
            codec.decompress(&image)?
        }
        CodecKind::SadcMips => {
            let codec = MipsSadc::from_bytes(codec_bytes)?;
            let image = SadcImage::from_bytes(image_bytes)?;
            codec.decompress(&image)?
        }
        CodecKind::SadcX86 => {
            let codec = X86Sadc::from_bytes(codec_bytes)?;
            let image = SadcImage::from_bytes(image_bytes)?;
            codec.decompress(&image)?
        }
    };

    let machine = match isa {
        Isa::Mips => Machine::Mips,
        Isa::X86 => Machine::I386,
    };
    let mut elf = ElfImage::new_executable(machine, class, endianness, text);
    elf.entry = entry;
    std::fs::write(output, elf.to_bytes())?;
    println!(
        "{path}: decompressed {} bytes of text into {output}",
        elf.text().expect("text").len()
    );
    Ok(())
}

fn analyze(args: &[String]) -> Result<(), Box<dyn Error>> {
    use cce_core::stats;
    let flags = split_flags(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err("usage: cce analyze <input.elf>".into());
    };
    let (elf, isa) = load_elf(path)?;
    let text = elf.text().ok_or("no .text section")?;
    println!("{path}: {} bytes of {isa} text", text.len());
    println!("  byte entropy:        {:.3} bits/byte", stats::byte_entropy(text));
    let positions = stats::position_entropy(text, 4);
    println!(
        "  per-byte-position:   [{:.2}, {:.2}, {:.2}, {:.2}] bits (stride 4)",
        positions[0], positions[1], positions[2], positions[3]
    );
    println!(
        "  word repeat ratio:   {:.1}% of 4-byte records repeat",
        100.0 * stats::repeat_ratio(text, 4)
    );
    if isa == Isa::Mips {
        let fields = stats::mips_field_stats(text)?;
        println!("  instructions:        {}", fields.instructions);
        println!("  distinct operations: {}", fields.distinct_operations);
        println!("  opcode entropy:      {:.3} bits/insn", fields.opcode_entropy);
        println!("  register entropy:    {:.3} bits/field", fields.register_entropy);
        println!("  imm16 entropy:       {:.3} bits/imm", fields.imm16_entropy);
        println!(
            "  field-coder bound:   {:.2} bits/insn  (ratio floor {:.3})",
            fields.field_bits_per_instruction,
            fields.field_bits_per_instruction / 32.0
        );
    }
    Ok(())
}

fn disasm(args: &[String]) -> Result<(), Box<dyn Error>> {
    use cce_core::isa::mips::decode_text;
    let Flags { positional, block_size: count, .. } = split_flags(args)?;
    let [path] = positional.as_slice() else {
        return Err("usage: cce disasm <input.elf> [-n COUNT]".into());
    };
    let (elf, isa) = load_elf(path)?;
    if isa != Isa::Mips {
        return Err("disassembly is only supported for MIPS executables".into());
    }
    let text = elf.text().ok_or("no .text section")?;
    let instructions = decode_text(text)?;
    let base = elf.section(".text").map_or(0, |s| s.addr);
    for (i, insn) in instructions.iter().take(count).enumerate() {
        println!("{:#010x}:  {:08x}  {insn}", base + 4 * i as u64, insn.encode());
    }
    if instructions.len() > count {
        println!("... {} more instructions", instructions.len() - count);
    }
    Ok(())
}

fn info(args: &[String]) -> Result<(), Box<dyn Error>> {
    let flags = split_flags(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err("usage: cce info <in.cce>".into());
    };
    let bytes = std::fs::read(path)?;
    let Container { kind, isa, class, endianness, entry, codec_bytes, image_bytes } =
        parse_container(&bytes)?;
    println!("{path}:");
    println!("  codec:      {kind:?}");
    println!("  isa:        {isa} ({class:?}, {endianness:?}, entry {entry:#x})");
    println!("  codec size: {} bytes", codec_bytes.len());
    match kind {
        CodecKind::Samc => {
            let image = SamcImage::from_bytes(image_bytes)?;
            println!(
                "  text:       {} bytes in {} blocks of {}",
                image.original_len(),
                image.block_count(),
                image.block_size()
            );
            println!(
                "  compressed: {} bytes (ratio {:.3}, LAT {} bytes)",
                image.compressed_len(),
                image.ratio(),
                image.lat_bytes()
            );
        }
        CodecKind::SadcMips | CodecKind::SadcX86 => {
            let image = SadcImage::from_bytes(image_bytes)?;
            println!(
                "  text:       {} bytes in {} blocks",
                image.original_len(),
                image.block_count()
            );
            println!(
                "  compressed: {} bytes (ratio {:.3}, dict {} + tables {}, LAT {} bytes)",
                image.compressed_len(),
                image.ratio(),
                image.dict_bytes(),
                image.table_bytes(),
                image.lat_bytes()
            );
        }
    }
    Ok(())
}
