//! `cce` — command-line front end for the code-compression toolkit.
//!
//! ```text
//! cce ratio [-b BLOCK] [--json] [--metrics M.json] <input.elf>
//! cce ratio --elf <input.elf> [...]          # streaming path + section stats
//! cce compress [-a ALGO] [-b BLOCK] [--model-cache DIR] <input.elf> -o <out.cce>
//! cce compress --elf <input.elf> [...] -o <out.cce>  # verbose streaming form
//! cce decompress <in.cce> -o <out.elf>       # rebuild a minimal ELF
//! cce info <in.cce>                          # inspect a compressed artifact
//! cce bench [--scale F] [--seed S] [--metrics M.json]  # fixed-seed suite run
//! cce gen <profile> [--scale F] [--seed S] [--multi-section] -o <out.elf>
//! cce stats [input.elf]                      # metric registry / live counters
//! cce fuzz --algo <name|all|serve> --cases N --seed S  # adversarial decode fuzzing
//! cce publish <in.cce> -o <dir> [--chunk-size N]  # container -> artifact directory
//! cce verify <dir>                           # re-hash a published artifact
//! cce serve <dir> --socket P | --tcp ADDR    # long-lived block-serving daemon
//! cce fetch --socket P | --tcp ADDR -o <out.elf>  # rebuild an ELF over the wire
//! ```
//!
//! `compress` always streams: the text section flows from the ELF
//! through the bounded block pipeline ([`cce_core::streaming`]) into an
//! incrementally written, indexed **v2** container, so peak memory is
//! the pipeline's reorder window — not the text size.  `decompress` and
//! `info` accept both container versions (v1 artifacts from older
//! builds keep decoding).  The `--elf` spelling of `compress`/`ratio`
//! additionally prints per-section statistics of the input.
//!
//! `--model-cache DIR` points SAMC at a persistent model store
//! ([`cce_core::samc::store`]): repeat requests reuse the trained model
//! outright, and fresh programs warm-start the stream-division search
//! from a cached division instead of the cold correlation pass.
//!
//! `publish` explodes a v2 container into a content-addressed artifact
//! directory (chunk files + SHA-256 manifest, [`cce_core::artifact`]),
//! `verify` re-hashes one end to end, `serve` answers block fetch and
//! decode requests over a Unix or TCP socket until a client sends
//! `shutdown`, and `fetch` is the reference client: it pulls the
//! manifest, decodes every block over the wire, and rebuilds the same
//! minimal ELF `decompress` writes.
//!
//! The `.cce` container holds the trained codec (Markov tables or
//! dictionary+code tables), the block image, and enough ELF identity to
//! rebuild a loadable executable around the decompressed text section.
//! The codec-kind byte is [`Algorithm::tag`], the same registry the
//! measurement harness uses, so any random-access algorithm the registry
//! knows is a valid container payload.

use cce_core::codec::{compress_parallel, worker_count, BlockCodec, BlockImage};
use cce_core::container::{container_version, Container, ContainerV2Reader};
use cce_core::elf::{ElfImage, ElfStream, Machine};
use cce_core::fuzz::FuzzConfig;
use cce_core::isa::Isa;
use cce_core::{measure, report, streaming, Algorithm};
use std::error::Error;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cce: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn Error>> {
    match args.first().map(String::as_str) {
        // `measure` is an alias kept for symmetry with the library API.
        Some("ratio" | "measure") => ratio(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("compress") => compress(&args[1..]),
        Some("decompress") => decompress(&args[1..]),
        Some("info") => info(&args[1..]),
        Some("analyze") => analyze(&args[1..]),
        Some("disasm") => disasm(&args[1..]),
        Some("fuzz") => fuzz(&args[1..]),
        Some("gen") => gen(&args[1..]),
        Some("sweep") => sweep(&args[1..]),
        Some("publish") => publish(&args[1..]),
        Some("verify") => verify(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("fetch") => fetch(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `cce help`)").into()),
    }
}

fn print_usage() {
    println!("cce — code compression for embedded systems (SAMC/SADC, DAC 1998)");
    println!();
    println!("USAGE:");
    println!("  cce ratio [-b N] [--json] [--metrics M.json] [--model-cache DIR] <input.elf>");
    println!("                                                compare all algorithms");
    println!("  cce ratio --elf <input.elf> [...]             same, streaming + section stats");
    println!(
        "  cce compress [-a samc|sadc|huffman] [-b N] [--model-cache DIR] <in.elf> -o <out.cce>"
    );
    println!("  cce compress --elf <in.elf> [...] -o <out.cce>");
    println!("                                                streaming form w/ section stats");
    println!("  cce decompress <in.cce> -o <out.elf>");
    println!("  cce info <in.cce>");
    println!(
        "  cce bench [--scale F] [--seed S] [-b N] [--json] [--metrics M.json] [--model-cache DIR]"
    );
    println!("                                                fixed-seed suite benchmark");
    println!("  cce bench --optimizer [--seed S] [-o OUT.json] [--json]");
    println!(
        "                                                SAMC optimizer + model-cache micro-bench"
    );
    println!("  cce bench --decode [--scale F] [--seed S] [-o OUT.json] [--json]");
    println!(
        "                                                entropy-backend decode throughput bench"
    );
    println!("  cce bench --memsim [...]                      alias for `cce sweep --bench`");
    println!("  cce sweep [--algos A,B] [--blocks N,..] [--caches N,..] [--assoc N,..]");
    println!("            [--clb N,..] [--decoders nibble,ransN] [--fetches N] [--scale F]");
    println!("            [--seed S] [--workers N] [--bench] [-o OUT.json] [--json]");
    println!("                                                memory-system design-space sweep");
    println!(
        "  cce gen <profile> [--scale F] [--seed S] [--isa mips|x86] [--multi-section] -o <out.elf>"
    );
    println!("                                                synthesize a SPEC95-like workload");
    println!("  cce stats                                     list registered metrics");
    println!("  cce stats [--metrics M.json] <input.elf>      measure and dump counters");
    println!("  cce analyze <input.elf>                       entropy diagnostics");
    println!("  cce disasm <input.elf> [-n COUNT]             disassemble (MIPS only)");
    println!("  cce fuzz --algo <name|all|serve> --cases N --seed S");
    println!("                                                adversarial decode fuzzing");
    println!("  cce publish <in.cce> -o <dir> [--chunk-size N]");
    println!("                                                explode a container into a");
    println!("                                                content-addressed artifact dir");
    println!("  cce verify <dir>                              re-hash a published artifact");
    println!("  cce serve <dir> --socket PATH|--tcp ADDR [--timeout-ms N] [--cache N]");
    println!("                                                block-serving daemon");
    println!("  cce fetch --socket PATH|--tcp ADDR -o <out.elf>");
    println!("                                                rebuild an ELF over the wire");
}

/// Parsed command-line flags.
struct Flags<'a> {
    positional: Vec<&'a str>,
    output: Option<&'a str>,
    algorithm: Option<&'a str>,
    block_size: usize,
    json: bool,
    cases: usize,
    seed: u64,
    metrics: Option<&'a str>,
    scale: f64,
    optimizer: bool,
    decode: bool,
    model_cache: Option<&'a str>,
    isa: Option<&'a str>,
    elf: Option<&'a str>,
    multi_section: bool,
    chunk_size: u64,
    socket: Option<&'a str>,
    tcp: Option<&'a str>,
    timeout_ms: u64,
    cache: usize,
    algos: Option<&'a str>,
    blocks: Option<&'a str>,
    caches: Option<&'a str>,
    assoc: Option<&'a str>,
    clb: Option<&'a str>,
    decoders: Option<&'a str>,
    fetches: usize,
    workers: Option<usize>,
    bench: bool,
    memsim: bool,
}

/// Parses `-o out` plus positional arguments.
fn split_flags(args: &[String]) -> Result<Flags<'_>, String> {
    let mut positional = Vec::new();
    let mut output = None;
    let mut algorithm = None;
    let mut block_size = 32usize;
    let mut json = false;
    let defaults = FuzzConfig::default();
    let mut cases = defaults.cases;
    let mut seed = defaults.seed;
    let mut metrics = None;
    let mut scale = 0.1f64;
    let mut optimizer = false;
    let mut decode = false;
    let mut model_cache = None;
    let mut isa = None;
    let mut elf = None;
    let mut multi_section = false;
    let mut chunk_size = cce_core::serve::DEFAULT_CHUNK_PAYLOAD;
    let mut socket = None;
    let mut tcp = None;
    let mut timeout_ms = 5000u64;
    let mut cache = 256usize;
    let mut algos = None;
    let mut blocks = None;
    let mut caches = None;
    let mut assoc = None;
    let mut clb = None;
    let mut decoders = None;
    let mut fetches = 100_000usize;
    let mut workers = None;
    let mut bench_flag = false;
    let mut memsim = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" | "--output" => {
                output = Some(args.get(i + 1).ok_or("missing value after -o")?.as_str());
                i += 2;
            }
            "-a" | "--algo" | "--algorithm" => {
                algorithm = Some(args.get(i + 1).ok_or("missing value after -a")?.as_str());
                i += 2;
            }
            "--cases" => {
                cases = args
                    .get(i + 1)
                    .ok_or("missing value after --cases")?
                    .parse()
                    .map_err(|_| "cases must be an integer")?;
                i += 2;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .ok_or("missing value after --seed")?
                    .parse()
                    .map_err(|_| "seed must be an integer")?;
                i += 2;
            }
            "-n" | "--count" => {
                block_size = args
                    .get(i + 1)
                    .ok_or("missing value after -n")?
                    .parse()
                    .map_err(|_| "count must be an integer")?;
                i += 2;
            }
            "-b" | "--block-size" => {
                block_size = args
                    .get(i + 1)
                    .ok_or("missing value after -b")?
                    .parse()
                    .map_err(|_| "block size must be an integer")?;
                i += 2;
            }
            "--metrics" => {
                metrics = Some(args.get(i + 1).ok_or("missing value after --metrics")?.as_str());
                i += 2;
            }
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .ok_or("missing value after --scale")?
                    .parse()
                    .map_err(|_| "scale must be a number")?;
                if !(scale > 0.0 && scale.is_finite()) {
                    return Err("scale must be positive".into());
                }
                i += 2;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--optimizer" => {
                optimizer = true;
                i += 1;
            }
            "--decode" => {
                decode = true;
                i += 1;
            }
            "--model-cache" => {
                model_cache =
                    Some(args.get(i + 1).ok_or("missing value after --model-cache")?.as_str());
                i += 2;
            }
            "--isa" => {
                isa = Some(args.get(i + 1).ok_or("missing value after --isa")?.as_str());
                i += 2;
            }
            "--elf" => {
                elf = Some(args.get(i + 1).ok_or("missing value after --elf")?.as_str());
                i += 2;
            }
            "--multi-section" => {
                multi_section = true;
                i += 1;
            }
            "--chunk-size" => {
                chunk_size = args
                    .get(i + 1)
                    .ok_or("missing value after --chunk-size")?
                    .parse()
                    .map_err(|_| "chunk size must be an integer")?;
                i += 2;
            }
            "--socket" => {
                socket = Some(args.get(i + 1).ok_or("missing value after --socket")?.as_str());
                i += 2;
            }
            "--tcp" => {
                tcp = Some(args.get(i + 1).ok_or("missing value after --tcp")?.as_str());
                i += 2;
            }
            "--timeout-ms" => {
                timeout_ms = args
                    .get(i + 1)
                    .ok_or("missing value after --timeout-ms")?
                    .parse()
                    .map_err(|_| "timeout must be an integer (milliseconds)")?;
                i += 2;
            }
            "--cache" => {
                cache = args
                    .get(i + 1)
                    .ok_or("missing value after --cache")?
                    .parse()
                    .map_err(|_| "cache must be an integer (blocks)")?;
                i += 2;
            }
            "--algos" => {
                algos = Some(args.get(i + 1).ok_or("missing value after --algos")?.as_str());
                i += 2;
            }
            "--blocks" => {
                blocks = Some(args.get(i + 1).ok_or("missing value after --blocks")?.as_str());
                i += 2;
            }
            "--caches" => {
                caches = Some(args.get(i + 1).ok_or("missing value after --caches")?.as_str());
                i += 2;
            }
            "--assoc" => {
                assoc = Some(args.get(i + 1).ok_or("missing value after --assoc")?.as_str());
                i += 2;
            }
            "--clb" => {
                clb = Some(args.get(i + 1).ok_or("missing value after --clb")?.as_str());
                i += 2;
            }
            "--decoders" => {
                decoders = Some(args.get(i + 1).ok_or("missing value after --decoders")?.as_str());
                i += 2;
            }
            "--fetches" => {
                fetches = args
                    .get(i + 1)
                    .ok_or("missing value after --fetches")?
                    .parse()
                    .map_err(|_| "fetches must be an integer")?;
                if fetches == 0 {
                    return Err("fetches must be positive".into());
                }
                i += 2;
            }
            "--workers" => {
                let n: usize = args
                    .get(i + 1)
                    .ok_or("missing value after --workers")?
                    .parse()
                    .map_err(|_| "workers must be an integer")?;
                if !(1..=1024).contains(&n) {
                    return Err("workers must be in 1..=1024".into());
                }
                workers = Some(n);
                i += 2;
            }
            "--bench" => {
                bench_flag = true;
                i += 1;
            }
            "--memsim" => {
                memsim = true;
                i += 1;
            }
            other => {
                positional.push(other);
                i += 1;
            }
        }
    }
    Ok(Flags {
        positional,
        output,
        algorithm,
        block_size,
        json,
        cases,
        seed,
        metrics,
        scale,
        optimizer,
        decode,
        model_cache,
        isa,
        elf,
        multi_section,
        chunk_size,
        socket,
        tcp,
        timeout_ms,
        cache,
        algos,
        blocks,
        caches,
        assoc,
        clb,
        decoders,
        fetches,
        workers,
        bench: bench_flag,
        memsim,
    })
}

/// Opens a [`CachedTrainer`] over `dir` for SAMC requests at
/// `block_size`, paired with the optimizer config every cache-path train
/// uses (defaults, with the stream count taken from the base division).
///
/// [`CachedTrainer`]: cce_core::samc::store::CachedTrainer
fn open_model_cache(dir: &str) -> Result<cce_core::samc::store::CachedTrainer, Box<dyn Error>> {
    use cce_core::samc::store::{CachedTrainer, ModelStore};
    /// Bounded by request diversity within one CLI run, not memory.
    const CACHE_CAPACITY: usize = 16;
    Ok(CachedTrainer::new(ModelStore::open(dir)?, CACHE_CAPACITY))
}

/// The SAMC training request the model-cache path resolves: the ISA's
/// base config at `block_size`, searched with default optimizer settings
/// over the base division's stream count.
fn cache_request(
    isa: Isa,
    block_size: usize,
) -> (cce_core::samc::SamcConfig, cce_core::samc::OptimizeConfig) {
    use cce_core::samc::{OptimizeConfig, SamcConfig};
    let base = match isa {
        Isa::Mips => SamcConfig::mips(),
        Isa::X86 => SamcConfig::x86(),
    }
    .with_block_size(block_size);
    let optimize =
        OptimizeConfig { streams: base.division.stream_count(), ..OptimizeConfig::default() };
    (base, optimize)
}

/// Buffered ELF load for the measurement-only commands (`ratio` in its
/// positional form, `stats`, `analyze`, `disasm`): diagnostics want the
/// whole text resident anyway, so the whole-file read is the honest
/// cost.  Compression never comes through here — it streams section
/// bytes through [`streaming::compress_elf`] instead.
fn load_elf(path: &str) -> Result<(ElfImage, Isa), Box<dyn Error>> {
    let bytes = std::fs::read(path)?;
    let image = ElfImage::parse(&bytes)?;
    let isa = match image.machine {
        Machine::Mips => Isa::Mips,
        Machine::I386 => Isa::X86,
        Machine::Other(m) => return Err(format!("unsupported e_machine {m}").into()),
    };
    Ok((image, isa))
}

/// Measures one algorithm, routing SAMC through the model cache when a
/// trainer is open (exact-key hits skip training; misses warm-start the
/// division search and persist the result).  The cache source is
/// reported on stderr so stdout stays a clean table/JSON stream.
fn measure_cached(
    algorithm: Algorithm,
    isa: Isa,
    text: &[u8],
    block_size: usize,
    trainer: &mut Option<cce_core::samc::store::CachedTrainer>,
) -> Result<cce_core::Measurement, Box<dyn Error>> {
    match trainer {
        Some(trainer) if algorithm == Algorithm::Samc => {
            let (config, optimize) = cache_request(isa, block_size);
            let outcome = trainer.train(text, &config, &optimize)?;
            eprintln!(
                "cce: model cache: {} (key {}, division {:016x})",
                outcome.source,
                outcome.key,
                outcome.codec.config().division.division_hash()
            );
            Ok(cce_core::measure_trained_block_codec(
                algorithm,
                isa,
                text,
                &outcome.codec,
                worker_count(),
            )?)
        }
        _ => Ok(measure(algorithm, isa, text, block_size)?),
    }
}

fn ratio(args: &[String]) -> Result<(), Box<dyn Error>> {
    let flags = split_flags(args)?;
    if let Some(path) = flags.elf {
        if !flags.positional.is_empty() {
            return Err("pass the input either positionally or via --elf, not both".into());
        }
        return ratio_elf(path, &flags);
    }
    let [path] = flags.positional.as_slice() else {
        return Err(
            "usage: cce ratio [-b N] [--json] [--metrics M.json] [--model-cache DIR] <input.elf>"
                .into(),
        );
    };
    let (elf, isa) = load_elf(path)?;
    let text = elf.text().ok_or("no .text section")?;
    let mut trainer = flags.model_cache.map(open_model_cache).transpose()?;

    if flags.json {
        let mut measurements = Vec::new();
        for algorithm in Algorithm::ALL {
            match measure_cached(algorithm, isa, text, flags.block_size, &mut trainer) {
                Ok(m) => measurements.push(m),
                Err(e) => eprintln!("cce: {algorithm} failed: {e}"),
            }
        }
        println!("{}", report::measurements_json(&measurements));
        return write_metrics(flags.metrics, "ratio");
    }

    println!("{path}: {} bytes of {isa} text", text.len());
    println!("{:<10} {:>12} {:>8}", "algorithm", "compressed", "ratio");
    for algorithm in Algorithm::ALL {
        match measure_cached(algorithm, isa, text, flags.block_size, &mut trainer) {
            Ok(m) => println!(
                "{:<10} {:>12} {:>8.3}",
                algorithm.to_string(),
                m.compressed_len(),
                m.ratio()
            ),
            Err(e) => println!("{:<10} failed: {e}", algorithm.to_string()),
        }
    }
    write_metrics(flags.metrics, "ratio")
}

/// `cce ratio --elf`: the streaming measurement path.  Section stats
/// come from the walker's header pass; each block algorithm is then
/// measured by streaming the text through the pipeline (training still
/// buffers the section once — see [`streaming::measure_elf`]).
fn ratio_elf(path: &str, flags: &Flags) -> Result<(), Box<dyn Error>> {
    let file = std::fs::File::open(path)?;
    let mut elf =
        ElfStream::open(std::io::BufReader::new(file)).map_err(streaming::stream_error)?;
    let workers = worker_count();

    if flags.json {
        let mut measurements = Vec::new();
        for algorithm in Algorithm::ALL {
            match streaming::measure_elf(&mut elf, algorithm, flags.block_size, workers) {
                Ok(m) => measurements.push(m),
                Err(e) => eprintln!("cce: {algorithm} failed: {e}"),
            }
        }
        println!("{}", report::measurements_json(&measurements));
        return write_metrics(flags.metrics, "ratio");
    }

    print_section_stats(path, &streaming::section_stats(&elf));
    println!("{:<10} {:>12} {:>8}", "algorithm", "compressed", "ratio");
    for algorithm in Algorithm::ALL {
        match streaming::measure_elf(&mut elf, algorithm, flags.block_size, workers) {
            Ok(m) => println!(
                "{:<10} {:>12} {:>8.3}",
                algorithm.to_string(),
                m.compressed_len(),
                m.ratio()
            ),
            Err(e) => println!("{:<10} failed: {e}", algorithm.to_string()),
        }
    }
    write_metrics(flags.metrics, "ratio")
}

/// Renders the per-section table the `--elf` forms print.
fn print_section_stats(path: &str, stats: &[streaming::SectionStat]) {
    println!("{path}: sections");
    println!("  {:<12} {:>10} {:>12}  notes", "name", "size", "addr");
    for s in stats {
        let mut notes = Vec::new();
        if s.is_text {
            notes.push("text (compressed)");
        }
        if !s.in_file {
            notes.push("nobits");
        }
        println!("  {:<12} {:>10} {:>#12x}  {}", s.name, s.size, s.addr, notes.join(", "));
    }
}

/// Writes the metrics artifact for `command` if `--metrics` was given.
fn write_metrics(path: Option<&str>, command: &str) -> Result<(), Box<dyn Error>> {
    let Some(path) = path else { return Ok(()) };
    if !cce_core::obs::enabled() {
        eprintln!("cce: warning: built without the `obs` feature; all metrics are zero");
    }
    std::fs::write(path, terminated(cce_core::obs::metrics_json(command)))?;
    eprintln!("cce: wrote {command} metrics to {path}");
    Ok(())
}

/// JSON artifacts are text files: POSIX tools (`tail`, `jq`, `wc -l`)
/// expect a final newline, so every reporter terminates with one.
fn terminated(mut json: String) -> String {
    if !json.ends_with('\n') {
        json.push('\n');
    }
    json
}

/// Benchmarks measured by `cce bench`: a small representative slice of
/// the suite so the smoke run stays fast at the default `--scale`.
const BENCH_PROGRAMS: [&str; 3] = ["compress", "go", "ijpeg"];

fn bench(args: &[String]) -> Result<(), Box<dyn Error>> {
    use cce_core::memsim::{CacheConfig, CostModel, LineAddressTable, MemorySystem};
    use cce_core::workload::trace::{instruction_trace, TraceConfig};

    let flags = split_flags(args)?;
    if !flags.positional.is_empty() {
        return Err(
            "usage: cce bench [--optimizer] [--scale F] [--seed S] [-b N] [--json] [--metrics M.json] [--model-cache DIR]"
                .into(),
        );
    }
    if flags.optimizer {
        return bench_optimizer(&flags);
    }
    if flags.decode {
        return bench_decode(&flags);
    }
    if flags.memsim {
        // `cce bench --memsim` ≡ `cce sweep --bench`: the design-space
        // sweep with the kernel-speedup leg in the artifact.
        return run_sweep_command(&flags, true);
    }
    cce_core::obs::reset();
    let isa = Isa::Mips;
    let mut trainer = flags.model_cache.map(open_model_cache).transpose()?;
    let programs = cce_core::workload::spec95_suite_seeded(isa, flags.scale, flags.seed);
    let programs: Vec<_> =
        programs.into_iter().filter(|p| BENCH_PROGRAMS.contains(&p.name)).collect();

    let mut measurements = Vec::new();
    if !flags.json {
        println!(
            "bench: {} MIPS benchmarks at scale {} (seed {})",
            programs.len(),
            flags.scale,
            flags.seed
        );
        println!(
            "{:<10} {:<10} {:>10} {:>12} {:>8}",
            "benchmark", "algorithm", "text", "compressed", "ratio"
        );
    }
    for program in &programs {
        for algorithm in Algorithm::ALL {
            let m = measure_cached(algorithm, isa, &program.text, flags.block_size, &mut trainer)
                .map_err(|e| format!("{}/{algorithm}: {e}", program.name))?;
            if !flags.json {
                println!(
                    "{:<10} {:<10} {:>10} {:>12} {:>8.3}",
                    program.name,
                    algorithm.to_string(),
                    m.original_len(),
                    m.compressed_len(),
                    m.ratio()
                );
            }
            measurements.push(m);
        }
    }

    // Memory-system leg: run the first benchmark's SAMC image through the
    // simulator so the artifact carries cache/CLB hit-miss counters too.
    let program = programs.first().ok_or("bench suite selection is empty")?;
    let samc = measurements
        .iter()
        .find(|m| m.algorithm() == Algorithm::Samc && m.original_len() == program.text.len())
        .ok_or("no SAMC measurement for the memsim leg")?;
    let sizes = samc.block_sizes().ok_or("SAMC is random-access")?;
    let lat = LineAddressTable::from_block_sizes(sizes.iter().copied());
    let config = CacheConfig { size_bytes: 4096, block_size: flags.block_size, associativity: 2 };
    let trace = instruction_trace(
        program.text.len(),
        &TraceConfig { fetches: 20_000, seed: flags.seed, ..TraceConfig::default() },
    );
    let mut base = MemorySystem::uncompressed(config, CostModel::default());
    let base_report = base.run(&trace);
    let mut comp = MemorySystem::compressed(config, CostModel::default(), lat, 32);
    let comp_report = comp.run(&trace);
    if flags.json {
        println!("{}", report::measurements_json(&measurements));
    } else {
        println!(
            "memsim ({}): hit ratio {:.3}, CLB {}/{} hit/miss, CPF {:.3} vs {:.3} uncompressed (slowdown {:.3})",
            program.name,
            comp_report.cache.hit_ratio(),
            comp_report.clb_hits,
            comp_report.clb_misses,
            comp_report.cpf(),
            base_report.cpf(),
            comp_report.slowdown_vs(&base_report)
        );
    }
    bench_pipeline(flags.seed, flags.json)?;
    write_metrics(flags.metrics, "bench")
}

/// Times full-image decodes of `image` through `codec` and returns the
/// throughput in MB/s of uncompressed output.  The first decode is
/// checked against `text` so the loop never times a broken decoder.
fn time_decode(
    codec: &dyn cce_core::codec::BlockCodec,
    image: &cce_core::codec::BlockImage,
    text: &[u8],
    iterations: usize,
) -> Result<f64, Box<dyn Error>> {
    use std::time::Instant;
    if codec.decompress(image)? != text {
        return Err(format!("{}: decode differs from the corpus", codec.name()).into());
    }
    let start = Instant::now();
    for _ in 0..iterations {
        std::hint::black_box(codec.decompress(image)?);
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    Ok((iterations * text.len()) as f64 / (1024.0 * 1024.0) / secs)
}

/// `cce bench --decode`: decode-throughput micro-benchmark of the two
/// entropy backends sharing SAMC's Markov models — the serial arithmetic
/// coder vs the interleaved rANS coder at every lane width — on both
/// ISAs, writing the `BENCH_decode.json` artifact (see README).
///
/// The corpus is the fixed-seed "go" workload; the iteration count is
/// derived deterministically from the corpus size so artifacts from
/// different scales time comparable total work.  Blocks are 4 KiB: large
/// enough to amortize the rANS stream header (1 + 4·lanes bytes/block)
/// below the ±2 % arith-ratio band the artifact asserts.
fn bench_decode(flags: &Flags) -> Result<(), Box<dyn Error>> {
    use cce_core::isa::mips::encode_text;
    use cce_core::rans::{Lanes, SamcRansCodec};
    use cce_core::samc::{SamcCodec, SamcConfig};
    use cce_core::workload::{generate_mips_seeded, generate_x86_seeded, Spec95};

    const PROFILE: &str = "go";
    const DECODE_BLOCK: usize = 4096;
    /// Uncompressed bytes each timing loop targets; fixes the iteration
    /// count from the corpus size alone.
    const TARGET_BYTES: usize = 32 * 1024 * 1024;

    let profile = Spec95::by_name(PROFILE).expect("profile is in the suite");
    let mut isa_reports = Vec::new();
    let mut band_ok = true;
    let mut speedup_4way = f64::INFINITY;
    for isa in [Isa::Mips, Isa::X86] {
        let text = match isa {
            Isa::Mips => encode_text(&generate_mips_seeded(profile, flags.scale, flags.seed)),
            Isa::X86 => generate_x86_seeded(profile, flags.scale, flags.seed),
        };
        let iterations = (TARGET_BYTES / text.len().max(1)).clamp(4, 512);
        let config = match isa {
            Isa::Mips => SamcConfig::mips(),
            Isa::X86 => SamcConfig::x86(),
        }
        .with_block_size(DECODE_BLOCK);
        let arith = SamcCodec::train(&text, config)?;
        let arith_image = cce_core::codec::BlockCodec::compress(&arith, &text)?;
        let arith_ratio = arith_image.compressed_len() as f64 / text.len() as f64;
        let arith_mb = time_decode(&arith, &arith_image, &text, iterations)?;
        if !flags.json {
            println!(
                "decode ({PROFILE}/{isa}, {} bytes, {iterations} iterations, {DECODE_BLOCK}-byte blocks):",
                text.len()
            );
            println!("  {:<14} {:>10}  {:>8}  {:>9}", "backend", "MB/s", "ratio", "speedup");
            println!("  {:<14} {arith_mb:>10.1}  {arith_ratio:>8.4}  {:>9.2}", "arith", 1.0);
        }
        let mut lane_reports = Vec::new();
        for lanes in Lanes::ALL {
            let rans = SamcRansCodec::from_samc(arith.clone(), lanes);
            let image = rans.compress(&text)?;
            let ratio = image.compressed_len() as f64 / text.len() as f64;
            let mb = time_decode(&rans, &image, &text, iterations)?;
            let speedup = mb / arith_mb;
            band_ok &= (image.compressed_len() as f64 - arith_image.compressed_len() as f64).abs()
                <= 0.02 * arith_image.compressed_len() as f64;
            if lanes == Lanes::FOUR {
                speedup_4way = speedup_4way.min(speedup);
            }
            if !flags.json {
                println!(
                    "  {:<14} {mb:>10.1}  {ratio:>8.4}  {speedup:>9.2}",
                    format!("rans/{lanes}-way")
                );
            }
            lane_reports.push(format!(
                concat!(
                    "{{\"lanes\":{lanes},\"mb_per_s\":{mb:.2},\"ratio\":{ratio:.6},",
                    "\"ratio_delta\":{delta:.6},\"speedup\":{speedup:.3}}}"
                ),
                lanes = lanes.get(),
                mb = mb,
                ratio = ratio,
                delta = ratio - arith_ratio,
                speedup = speedup,
            ));
        }
        isa_reports.push(format!(
            concat!(
                "{{\"isa\":\"{isa}\",\"corpus_bytes\":{corpus},\"iterations\":{iterations},",
                "\"arith\":{{\"mb_per_s\":{arith_mb:.2},\"ratio\":{arith_ratio:.6}}},",
                "\"rans\":[{lanes}]}}"
            ),
            isa = match isa {
                Isa::Mips => "mips",
                Isa::X86 => "x86",
            },
            corpus = text.len(),
            iterations = iterations,
            arith_mb = arith_mb,
            arith_ratio = arith_ratio,
            lanes = lane_reports.join(","),
        ));
    }
    let artifact = format!(
        concat!(
            "{{\"version\":1,\"benchmark\":\"decode\",\"profile\":\"{profile}\",",
            "\"scale\":{scale},\"seed\":{seed},\"block_size\":{block},",
            "\"isas\":[{isas}],",
            "\"matches_arith_ratio_band\":{band},\"speedup_4way\":{speedup:.3}}}"
        ),
        profile = PROFILE,
        scale = flags.scale,
        seed = flags.seed,
        block = DECODE_BLOCK,
        isas = isa_reports.join(","),
        band = band_ok,
        speedup = speedup_4way,
    );
    let path = flags.output.unwrap_or("BENCH_decode.json");
    std::fs::write(path, terminated(artifact.clone()))?;
    if flags.json {
        println!("{artifact}");
    } else {
        println!(
            "decode bench: 4-way rANS speedup {speedup_4way:.2}x, arith ratio band {}",
            if band_ok { "held (±2%)" } else { "VIOLATED" }
        );
        println!("  wrote {path}");
    }
    write_metrics(flags.metrics, "bench-decode")
}

/// Parses a comma-separated list of integers for a sweep grid axis.
fn parse_csv_usize(flag: &str, raw: &str) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    for part in raw.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(part.parse().map_err(|_| format!("{flag}: `{part}` is not an integer"))?);
    }
    if out.is_empty() {
        return Err(format!("{flag}: no values"));
    }
    Ok(out)
}

/// Parses one `--decoders` axis value: `nibble` or `ransN` (N lanes).
fn parse_decoder(name: &str) -> Result<cce_core::memsim::sweep::SweepDecoder, String> {
    use cce_core::memsim::{sweep::SweepDecoder, DecoderLatency};
    if name == "nibble" {
        return Ok(SweepDecoder { name: name.into(), latency: DecoderLatency::nibble() });
    }
    if let Some(lanes) = name.strip_prefix("rans") {
        let lanes: usize =
            lanes.parse().map_err(|_| format!("bad decoder `{name}` (want ransN)"))?;
        let latency =
            DecoderLatency::try_rans(lanes).map_err(|e| format!("decoder `{name}`: {e}"))?;
        return Ok(SweepDecoder { name: name.into(), latency });
    }
    Err(format!("unknown decoder `{name}` (want nibble or ransN)"))
}

/// `cce sweep`: expand and simulate the memory-system design-space grid,
/// writing the versioned `BENCH_memsim.json` artifact (see README).
fn sweep(args: &[String]) -> Result<(), Box<dyn Error>> {
    let flags = split_flags(args)?;
    if !flags.positional.is_empty() {
        return Err(concat!(
            "usage: cce sweep [--algos A,B] [--blocks N,..] [--caches N,..] [--assoc N,..] ",
            "[--clb N,..] [--decoders nibble,ransN] [--fetches N] [--scale F] [--seed S] ",
            "[--workers N] [--bench] [-o OUT.json] [--json] [--metrics M.json]"
        )
        .into());
    }
    run_sweep_command(&flags, flags.bench)
}

/// The sweep driver behind `cce sweep` and `cce bench --memsim`.
///
/// Workload and trace are fixed-seed and generated once; each (codec,
/// block size) image is trained and compressed exactly once and shared
/// across its cells via `Arc`; cells fan out over the deterministic
/// `parallel_map` pool.  The artifact contains no wall-clock numbers
/// unless `with_kernel_leg` is set, so a plain `cce sweep` writes a
/// byte-identical `BENCH_memsim.json` for any `--workers` value — the
/// property CI pins.  With the kernel leg, the same fixed-seed trace is
/// timed through the fast and the retained reference kernels and the two
/// reports are required to be identical (`matches_reference`).
fn run_sweep_command(flags: &Flags, with_kernel_leg: bool) -> Result<(), Box<dyn Error>> {
    use cce_core::codec::compress_parallel;
    use cce_core::isa::mips::encode_text;
    use cce_core::memsim::sweep::{run_sweep, SweepConfig, SweepImage};
    use cce_core::memsim::{CacheConfig, CostModel, LineAddressTable, MemorySystem};
    use cce_core::workload::trace::{instruction_trace, TraceConfig};
    use cce_core::workload::{generate_mips_seeded, Spec95};
    use std::sync::Arc;
    use std::time::Instant;

    const PROFILE: &str = "go";
    cce_core::obs::reset();

    // Grid axes (defaults give 144 cells; CI widens --assoc to pass 200).
    let defaults = SweepConfig::default();
    let algo_names = flags.algos.unwrap_or("samc,huffman");
    let mut algorithms = Vec::new();
    for name in algo_names.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let algorithm =
            Algorithm::by_name(name).ok_or_else(|| format!("unknown algorithm `{name}`"))?;
        if !algorithm.random_access() {
            return Err(format!(
                "{algorithm} is file-oriented; a memory system needs random access"
            )
            .into());
        }
        algorithms.push(algorithm);
    }
    if algorithms.is_empty() {
        return Err("--algos: no values".into());
    }
    let blocks = match flags.blocks {
        Some(raw) => parse_csv_usize("--blocks", raw)?,
        None => vec![16, 32, 64],
    };
    let cache_sizes = match flags.caches {
        Some(raw) => parse_csv_usize("--caches", raw)?,
        None => defaults.cache_sizes.clone(),
    };
    let associativities = match flags.assoc {
        Some(raw) => parse_csv_usize("--assoc", raw)?,
        None => defaults.associativities.clone(),
    };
    let clb_entries = match flags.clb {
        Some(raw) => parse_csv_usize("--clb", raw)?,
        None => defaults.clb_entries.clone(),
    };
    let decoders = match flags.decoders {
        Some(raw) => raw
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(parse_decoder)
            .collect::<Result<Vec<_>, _>>()?,
        None => defaults.decoders.clone(),
    };
    if decoders.is_empty() {
        return Err("--decoders: no values".into());
    }
    let config = SweepConfig {
        cache_sizes,
        associativities,
        clb_entries,
        decoders,
        memory_latency: defaults.memory_latency,
        bus_bytes_per_cycle: defaults.bus_bytes_per_cycle,
    };
    let workers = flags.workers.unwrap_or_else(cce_core::codec::worker_count);

    // Workload text and fetch trace: generated once, shared by every
    // image and cell.
    let profile = Spec95::by_name(PROFILE).expect("profile is in the suite");
    let text = encode_text(&generate_mips_seeded(profile, flags.scale, flags.seed));
    let trace = instruction_trace(
        text.len(),
        &TraceConfig { fetches: flags.fetches, seed: flags.seed, ..TraceConfig::default() },
    );

    // Each (codec, block size) grid point is trained and compressed
    // exactly once; cells only ever see the Arc-shared LAT.
    let mut images = Vec::new();
    let mut image_json = Vec::new();
    for &algorithm in &algorithms {
        for &block_size in &blocks {
            let handle = algorithm
                .build(Isa::Mips, block_size)
                .train(&text)
                .map_err(|e| format!("{algorithm}/b{block_size}: {e}"))?;
            let codec = handle.as_block().expect("random-access checked above");
            let image = compress_parallel(codec, &text, workers)
                .map_err(|e| format!("{algorithm}/b{block_size}: {e}"))?;
            let lat = LineAddressTable::from_image(&image);
            image_json.push(format!(
                concat!(
                    "{{\"codec\":\"{codec}\",\"block_size\":{block},\"blocks\":{blocks},",
                    "\"compressed_bytes\":{compressed},\"text_bytes\":{text_bytes},",
                    "\"ratio\":{ratio:.6},\"lat_bytes\":{lat_bytes}}}"
                ),
                codec = algorithm,
                block = block_size,
                blocks = image.block_count(),
                compressed = image.compressed_len(),
                text_bytes = text.len(),
                ratio = image.compressed_len() as f64 / text.len() as f64,
                lat_bytes = lat.table_bytes(),
            ));
            images.push(SweepImage {
                codec: algorithm.to_string(),
                block_size,
                lat: Arc::new(lat),
                compressed_bytes: image.compressed_len() as u64,
                text_bytes: text.len() as u64,
            });
        }
    }

    let results = run_sweep(&images, &config, &trace, workers);
    if results.is_empty() {
        return Err("sweep grid expanded to zero valid cells".into());
    }

    let mut cell_json = Vec::with_capacity(results.len());
    for r in &results {
        let image = &images[r.cell.image];
        let clb_total = (r.report.clb_hits + r.report.clb_misses).max(1);
        cell_json.push(format!(
            concat!(
                "{{\"codec\":\"{codec}\",\"block_size\":{block},\"cache\":{cache},",
                "\"assoc\":{assoc},\"clb\":{clb},\"decoder\":\"{decoder}\",",
                "\"cpf\":{cpf:.6},\"baseline_cpf\":{baseline:.6},\"slowdown\":{slowdown:.6},",
                "\"cache_hit_ratio\":{cache_hits:.6},\"clb_hit_ratio\":{clb_hits:.6},",
                "\"refill_cycles\":{refill}}}"
            ),
            codec = image.codec,
            block = image.block_size,
            cache = r.cell.cache_size,
            assoc = r.cell.associativity,
            clb = r.cell.clb_entries,
            decoder = config.decoders[r.cell.decoder].name,
            cpf = r.report.cpf(),
            baseline = r.baseline.cpf(),
            slowdown = r.slowdown(),
            cache_hits = r.report.cache.hit_ratio(),
            clb_hits = r.report.clb_hits as f64 / clb_total as f64,
            refill = r.report.refill_cycles,
        ));
    }

    // Per-decoder mean CPF, and the arith-vs-rANS refill-latency delta
    // (nibble models the paper's serial engine; positive delta = the
    // rANS engine is faster end to end).
    let mut decoder_json = Vec::new();
    let mut mean_by_decoder = Vec::new();
    for (index, decoder) in config.decoders.iter().enumerate() {
        let cpfs: Vec<f64> =
            results.iter().filter(|r| r.cell.decoder == index).map(|r| r.report.cpf()).collect();
        let mean = cpfs.iter().sum::<f64>() / cpfs.len().max(1) as f64;
        mean_by_decoder.push(mean);
        decoder_json.push(format!(
            "{{\"decoder\":\"{name}\",\"cells\":{cells},\"mean_cpf\":{mean:.6}}}",
            name = decoder.name,
            cells = cpfs.len(),
        ));
    }
    let nibble_mean =
        config.decoders.iter().position(|d| d.name == "nibble").map(|i| mean_by_decoder[i]);
    let rans_mean =
        config.decoders.iter().position(|d| d.name.starts_with("rans")).map(|i| mean_by_decoder[i]);
    let arith_rans_delta = match (nibble_mean, rans_mean) {
        (Some(nibble), Some(rans)) => format!("{:.6}", nibble - rans),
        _ => "null".into(),
    };

    // Kernel leg (timing — only with --bench, so the plain artifact stays
    // byte-identical across worker counts): the fixed-seed trace through
    // the fast kernel vs the retained reference walk on one cell.
    let kernel = if with_kernel_leg {
        // Time the geometry with the widest sets and the smallest cache —
        // the most conflict pressure, where the set walk the flat kernel
        // replaces is at its largest.
        let cell = results
            .iter()
            .map(|r| r.cell)
            .max_by_key(|c| (c.associativity, std::cmp::Reverse(c.cache_size)))
            .expect("results checked non-empty above");
        let image = &images[cell.image];
        let cache = CacheConfig {
            size_bytes: cell.cache_size,
            block_size: image.block_size,
            associativity: cell.associativity,
        };
        let costs = CostModel {
            memory_latency: config.memory_latency,
            bus_bytes_per_cycle: config.bus_bytes_per_cycle,
            decoder: config.decoders[cell.decoder].latency,
        };
        let fresh =
            || MemorySystem::compressed(cache, costs, Arc::clone(&image.lat), cell.clb_entries);
        // Correctness gate before any timing.
        let fast_report = fresh().run(&trace);
        let reference_report = fresh().run_reference(&trace);
        let matches_reference = fast_report == reference_report;

        let reps = (4_000_000 / flags.fetches.max(1)).clamp(2, 64);
        // Interleave the two legs rep for rep so clock-frequency drift
        // lands on both sides of the ratio equally.
        let mut fast_s = 0f64;
        let mut reference_s = 0f64;
        for _ in 0..reps {
            let start = Instant::now();
            let mut system = fresh();
            std::hint::black_box(system.run(&trace));
            fast_s += start.elapsed().as_secs_f64();
            let start = Instant::now();
            let mut system = fresh();
            std::hint::black_box(system.run_reference(&trace));
            reference_s += start.elapsed().as_secs_f64();
        }
        let fast_ms = fast_s.max(1e-9) * 1e3;
        let reference_ms = reference_s.max(1e-9) * 1e3;
        let fetches_per_s = |ms: f64| (reps as u64 * trace.len() as u64) as f64 / (ms / 1e3);
        let speedup = reference_ms / fast_ms;
        if !flags.json {
            println!(
                "kernel: fast {:.1} vs reference {:.1} Mfetch/s ({speedup:.2}x), matches_reference {matches_reference}",
                fetches_per_s(fast_ms) / 1e6,
                fetches_per_s(reference_ms) / 1e6,
            );
        }
        format!(
            concat!(
                "{{\"cell\":{{\"codec\":\"{codec}\",\"block_size\":{block},\"cache\":{cache},",
                "\"assoc\":{assoc},\"clb\":{clb},\"decoder\":\"{decoder}\"}},",
                "\"fetches\":{fetches},\"reps\":{reps},",
                "\"reference_ms\":{reference_ms:.3},\"fast_ms\":{fast_ms:.3},",
                "\"reference_fetches_per_s\":{ref_fps:.0},\"fast_fetches_per_s\":{fast_fps:.0},",
                "\"speedup\":{speedup:.3},\"matches_reference\":{matches_reference}}}"
            ),
            codec = image.codec,
            block = image.block_size,
            cache = cell.cache_size,
            assoc = cell.associativity,
            clb = cell.clb_entries,
            decoder = config.decoders[cell.decoder].name,
            fetches = trace.len(),
            reps = reps,
            reference_ms = reference_ms,
            fast_ms = fast_ms,
            ref_fps = fetches_per_s(reference_ms),
            fast_fps = fetches_per_s(fast_ms),
            speedup = speedup,
            matches_reference = matches_reference,
        )
    } else {
        "null".into()
    };

    let artifact = format!(
        concat!(
            "{{\"version\":1,\"benchmark\":\"memsim-sweep\",\"profile\":\"{profile}\",",
            "\"scale\":{scale},\"seed\":{seed},\"fetches\":{fetches},",
            "\"grid\":{{\"algos\":[{algos}],\"blocks\":{blocks:?},\"caches\":{caches:?},",
            "\"assoc\":{assoc:?},\"clb\":{clb:?},\"decoders\":[{decoders}],",
            "\"memory_latency\":{latency},\"bus_bytes_per_cycle\":{bus}}},",
            "\"images\":[{images}],\"cells\":[{cells}],",
            "\"summary\":{{\"cells\":{cell_count},\"images\":{image_count},",
            "\"decoder_mean_cpf\":[{decoder_means}],\"arith_rans_delta\":{delta}}},",
            "\"kernel\":{kernel}}}"
        ),
        profile = PROFILE,
        scale = flags.scale,
        seed = flags.seed,
        fetches = trace.len(),
        algos = algorithms.iter().map(|a| format!("\"{a}\"")).collect::<Vec<_>>().join(","),
        blocks = blocks,
        caches = config.cache_sizes,
        assoc = config.associativities,
        clb = config.clb_entries,
        decoders =
            config.decoders.iter().map(|d| format!("\"{}\"", d.name)).collect::<Vec<_>>().join(","),
        latency = config.memory_latency,
        bus = config.bus_bytes_per_cycle,
        images = image_json.join(","),
        cells = cell_json.join(","),
        cell_count = results.len(),
        image_count = images.len(),
        decoder_means = decoder_json.join(","),
        delta = arith_rans_delta,
        kernel = kernel,
    );
    let path = flags.output.unwrap_or("BENCH_memsim.json");
    std::fs::write(path, terminated(artifact.clone()))?;
    if flags.json {
        println!("{artifact}");
    } else {
        println!(
            "sweep: {} cells over {} images ({} fetches each), arith-vs-rANS mean CPF delta {}",
            results.len(),
            images.len(),
            trace.len(),
            arith_rans_delta,
        );
        println!("  wrote {path}");
    }
    write_metrics(flags.metrics, "sweep")
}

/// `cce bench` pipeline leg: streams a fixed multi-megabyte synthetic
/// ELF through the bounded block pipeline into a discarded sink and
/// writes `BENCH_pipeline.json`.  The workload is independent of
/// `--scale` so artifacts are comparable across runs, and the codec is
/// ByteHuffman — training is a byte histogram, so the leg times the
/// pipeline itself rather than model search.
fn bench_pipeline(seed: u64, json: bool) -> Result<(), Box<dyn Error>> {
    use cce_core::elf::{Class, Endianness};
    use cce_core::isa::mips::encode_text;
    use cce_core::workload::{generate_mips_seeded, Spec95};
    use std::io::Cursor;
    use std::time::Instant;

    // ~4.3 MB of MIPS text: big enough that bounded memory matters,
    // small enough that the smoke run stays interactive.
    const PROFILE: &str = "go";
    const WORKLOAD_SCALE: f64 = 64.0;
    const BLOCK_SIZE: usize = 32;
    let profile = Spec95::by_name(PROFILE).expect("profile is in the suite");
    let text = encode_text(&generate_mips_seeded(profile, WORKLOAD_SCALE, seed));
    let elf_bytes =
        ElfImage::new_executable(Machine::Mips, Class::Elf32, Endianness::Big, text).to_bytes();
    let mut elf = ElfStream::open(Cursor::new(&elf_bytes)).map_err(streaming::stream_error)?;

    let algorithm = Algorithm::ByteHuffman;
    let training = streaming::buffered_text(&mut elf)?;
    let handle = algorithm.build(Isa::Mips, BLOCK_SIZE).train(&training)?;
    drop(training);
    let codec = handle.as_block().expect("huffman is random-access");
    let workers = worker_count();

    let start = Instant::now();
    let report = streaming::compress_elf(&mut elf, algorithm, codec, std::io::sink(), workers)?;
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let stats = report.stats;
    let mb_per_s = (stats.bytes_in as f64 / (1024.0 * 1024.0)) / (ms / 1e3).max(1e-9);
    let queue_limit = 2 * workers;

    let artifact = format!(
        concat!(
            "{{\"version\":1,\"benchmark\":\"pipeline\",",
            "\"workload\":{{\"profile\":\"{profile}\",\"scale\":{scale},\"seed\":{seed},\"text_bytes\":{text_bytes}}},",
            "\"algorithm\":\"{algorithm}\",\"block_size\":{block_size},\"workers\":{workers},",
            "\"blocks\":{blocks},\"bytes_in\":{bytes_in},\"bytes_out\":{bytes_out},",
            "\"peak_queue\":{peak_queue},\"queue_limit\":{queue_limit},\"stalls\":{stalls},",
            "\"ms\":{ms:.3},\"mb_per_s\":{mb_per_s:.2},\"ratio\":{ratio:.6}}}"
        ),
        profile = PROFILE,
        scale = WORKLOAD_SCALE,
        seed = seed,
        text_bytes = stats.bytes_in,
        algorithm = algorithm,
        block_size = BLOCK_SIZE,
        workers = workers,
        blocks = stats.blocks,
        bytes_in = stats.bytes_in,
        bytes_out = stats.bytes_out,
        peak_queue = stats.peak_queue,
        queue_limit = queue_limit,
        stalls = stats.stalls,
        ms = ms,
        mb_per_s = mb_per_s,
        ratio = report.summary.ratio(),
    );
    std::fs::write("BENCH_pipeline.json", terminated(artifact))?;
    if !json {
        println!(
            "pipeline ({PROFILE} at scale {WORKLOAD_SCALE}): {} bytes in {} blocks, \
             {mb_per_s:.1} MB/s over {workers} workers (peak queue {}/{queue_limit}, {} stalls)",
            stats.bytes_in, stats.blocks, stats.peak_queue, stats.stalls
        );
        println!("  wrote BENCH_pipeline.json");
    }
    Ok(())
}

/// `cce bench --optimizer`: times the pre-kernel reference search against
/// the incremental one on a fixed workload, runs a multi-program
/// cold-vs-warm model-cache batch, and writes the `BENCH_optimizer.json`
/// artifact (see README).  Division hashes come from
/// [`StreamDivision::division_hash`][h], the same FNV-1a the model store
/// keys on, so CI can pin the optimizer's output against one recorded
/// value.
///
/// [h]: cce_core::samc::StreamDivision::division_hash
fn bench_optimizer(flags: &Flags) -> Result<(), Box<dyn Error>> {
    use cce_core::isa::mips::encode_text;
    use cce_core::samc::{
        optimize_division_reference, optimize_division_with_workers, OptimizeConfig,
    };
    use cce_core::workload::{generate_mips_seeded, Spec95};
    use std::time::Instant;

    cce_core::obs::reset();
    // Fixed workload, independent of --scale: the "go" profile at scale
    // 0.5 is ~8.5k instruction words, comfortably above the default
    // 4096-unit evaluation sample.
    const PROFILE: &str = "go";
    const WORKLOAD_SCALE: f64 = 0.5;
    let profile = Spec95::by_name(PROFILE).expect("profile is in the suite");
    let text = encode_text(&generate_mips_seeded(profile, WORKLOAD_SCALE, flags.seed));
    let units: Vec<u32> = text
        .chunks_exact(4)
        .map(|c| u32::from_be_bytes(c.try_into().expect("4-byte chunk")))
        .collect();
    let config = OptimizeConfig::default();

    let start = Instant::now();
    let (reference_division, reference_cost) = optimize_division_reference(&units, 32, &config);
    let reference_ms = start.elapsed().as_secs_f64() * 1e3;

    // Best of a few runs for the fast path: it is short enough that a
    // single sample would be noise-dominated.
    const FAST_RUNS: usize = 5;
    let mut fast_ms = f64::INFINITY;
    let mut fast = None;
    for _ in 0..FAST_RUNS {
        let start = Instant::now();
        let result = optimize_division_with_workers(&units, 32, &config, 1);
        fast_ms = fast_ms.min(start.elapsed().as_secs_f64() * 1e3);
        fast = Some(result);
    }
    let (division, cost) = fast.expect("at least one run");
    let matches_reference = division == reference_division;
    let speedup = reference_ms / fast_ms.max(1e-9);

    let workers = worker_count();
    let multi = OptimizeConfig { restarts: 8, ..config.clone() };
    let start = Instant::now();
    let (_, multi_cost) = optimize_division_with_workers(&units, 32, &multi, workers);
    let multi_ms = start.elapsed().as_secs_f64() * 1e3;

    // Model-cache leg: train a small program batch twice through a fresh
    // store.  The first pass trains (cold, then warm-started from the
    // first program's cached division); the second pass must be all
    // exact-key hits, so its time is the amortized per-request cost.
    // "go" leads so its cold division hash matches the pinned top-level
    // one (same workload, same default search).
    const CACHE_PROGRAMS: [&str; 3] = ["go", "compress", "ijpeg"];
    let cache_dir =
        std::env::temp_dir().join(format!("cce-bench-model-cache-{}", std::process::id()));
    std::fs::remove_dir_all(&cache_dir).ok();
    let texts: Vec<Vec<u8>> = CACHE_PROGRAMS
        .iter()
        .map(|name| {
            let profile = Spec95::by_name(name).expect("profile is in the suite");
            encode_text(&generate_mips_seeded(profile, WORKLOAD_SCALE, flags.seed))
        })
        .collect();
    let mut trainer = cce_core::samc::store::CachedTrainer::new(
        cce_core::samc::store::ModelStore::open(&cache_dir)?,
        CACHE_PROGRAMS.len().max(1),
    );
    let samc_config = cce_core::samc::SamcConfig::mips();
    let mut cold_sources = Vec::new();
    let mut cold_images = Vec::new();
    let start = Instant::now();
    for text in &texts {
        let outcome = trainer.train(text, &samc_config, &config)?;
        cold_sources.push(outcome.source.to_string());
        cold_images.push(compress_parallel(&outcome.codec, text, workers)?.to_bytes());
    }
    let cache_cold_ms = start.elapsed().as_secs_f64() * 1e3;
    let cold_division_hash =
        trainer.train(&texts[0], &samc_config, &config)?.codec.config().division.division_hash();
    let mut warm_hits = 0usize;
    let mut warm_matches_cold = true;
    let start = Instant::now();
    for (text, cold_image) in texts.iter().zip(&cold_images) {
        let outcome = trainer.train(text, &samc_config, &config)?;
        warm_hits += usize::from(outcome.source.is_hit());
        warm_matches_cold &=
            compress_parallel(&outcome.codec, text, workers)?.to_bytes() == *cold_image;
    }
    let cache_warm_ms = start.elapsed().as_secs_f64() * 1e3;
    let warm_speedup = cache_cold_ms / cache_warm_ms.max(1e-9);
    std::fs::remove_dir_all(&cache_dir).ok();

    let json = format!(
        concat!(
            "{{\"version\":1,\"benchmark\":\"optimizer\",",
            "\"workload\":{{\"profile\":\"{profile}\",\"scale\":{scale},\"seed\":{seed},\"units\":{units}}},",
            "\"config\":{{\"streams\":{streams},\"iterations\":{iterations},\"sample_units\":{sample},\"seed\":{opt_seed}}},",
            "\"reference_ms\":{reference_ms:.3},\"fast_ms\":{fast_ms:.3},\"speedup\":{speedup:.2},",
            "\"matches_reference\":{matches},",
            "\"cost_bits\":{cost:.3},\"reference_cost_bits\":{reference_cost:.3},",
            "\"division_hash\":\"{hash:016x}\",",
            "\"multi_restart\":{{\"restarts\":{restarts},\"workers\":{workers},\"ms\":{multi_ms:.3},\"cost_bits\":{multi_cost:.3}}},",
            "\"model_cache\":{{\"programs\":[{cache_programs}],\"cold_ms\":{cache_cold_ms:.3},",
            "\"warm_ms\":{cache_warm_ms:.3},\"warm_speedup\":{warm_speedup:.2},",
            "\"cold_sources\":[{cold_sources}],\"warm_hits\":{warm_hits},",
            "\"warm_matches_cold\":{warm_matches_cold},",
            "\"cold_division_hash\":\"{cold_division_hash:016x}\"}}}}"
        ),
        profile = PROFILE,
        scale = WORKLOAD_SCALE,
        seed = flags.seed,
        units = units.len(),
        streams = config.streams,
        iterations = config.iterations,
        sample = config.sample_units,
        opt_seed = config.seed,
        reference_ms = reference_ms,
        fast_ms = fast_ms,
        speedup = speedup,
        matches = matches_reference,
        cost = cost,
        reference_cost = reference_cost,
        hash = division.division_hash(),
        restarts = multi.restarts,
        workers = workers,
        multi_ms = multi_ms,
        multi_cost = multi_cost,
        cache_programs = CACHE_PROGRAMS
            .iter()
            .map(|p| format!("\"{p}\""))
            .collect::<Vec<_>>()
            .join(","),
        cache_cold_ms = cache_cold_ms,
        cache_warm_ms = cache_warm_ms,
        warm_speedup = warm_speedup,
        cold_sources = cold_sources
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(","),
        warm_hits = warm_hits,
        warm_matches_cold = warm_matches_cold,
        cold_division_hash = cold_division_hash,
    );
    let path = flags.output.unwrap_or("BENCH_optimizer.json");
    std::fs::write(path, terminated(json.clone()))?;

    if flags.json {
        println!("{json}");
    } else {
        println!(
            "optimizer bench: {PROFILE} at scale {WORKLOAD_SCALE} (seed {}), {} units",
            flags.seed,
            units.len()
        );
        println!("  reference search: {reference_ms:>9.2} ms  (cost {reference_cost:.0} bits)");
        println!(
            "  incremental:      {fast_ms:>9.2} ms  (cost {cost:.0} bits, {speedup:.1}x, \
             division {}, hash {:016x})",
            if matches_reference { "matches" } else { "DIVERGED" },
            division.division_hash(),
        );
        println!(
            "  8 restarts:       {multi_ms:>9.2} ms  (cost {multi_cost:.0} bits, {workers} workers)"
        );
        println!(
            "  model cache:      {cache_cold_ms:>9.2} ms cold vs {cache_warm_ms:.2} ms warm \
             over {} programs ({warm_speedup:.1}x, {warm_hits} hits, images {})",
            CACHE_PROGRAMS.len(),
            if warm_matches_cold { "match" } else { "DIVERGED" },
        );
        println!("  wrote {path}");
    }
    write_metrics(flags.metrics, "bench-optimizer")
}

fn stats(args: &[String]) -> Result<(), Box<dyn Error>> {
    use cce_core::obs::{MetricsSink, TableSink};

    let flags = split_flags(args)?;
    match flags.positional.as_slice() {
        // Without an input, list the registry: every metric the workspace
        // can record, whether or not anything has run.
        [] => {
            for desc in cce_core::obs::descriptors() {
                println!("{:<26} {:<9} {}", desc.name, desc.kind().name(), desc.help);
            }
            Ok(())
        }
        [path] => {
            let (elf, isa) = load_elf(path)?;
            let text = elf.text().ok_or("no .text section")?;
            cce_core::obs::reset();
            for algorithm in Algorithm::ALL {
                if let Err(e) = measure(algorithm, isa, text, flags.block_size) {
                    eprintln!("cce: {algorithm} failed: {e}");
                }
            }
            if !cce_core::obs::enabled() {
                eprintln!("cce: built without the `obs` feature; all metrics read zero");
            }
            print!("{}", TableSink { skip_zero: true }.render(&cce_core::obs::snapshot()));
            write_metrics(flags.metrics, "stats")
        }
        _ => Err("usage: cce stats [--metrics M.json] [input.elf]".into()),
    }
}

fn compress(args: &[String]) -> Result<(), Box<dyn Error>> {
    let flags = split_flags(args)?;
    let path = match (flags.positional.as_slice(), flags.elf) {
        ([path], None) => *path,
        ([], Some(path)) => path,
        _ => {
            return Err("usage: cce compress [-a samc|sadc|huffman] [-b N] [--model-cache DIR] \
                 [--metrics M.json] <in.elf> -o <out.cce>"
                .into())
        }
    };
    let output = flags.output.ok_or("missing -o <out.cce>")?;
    let file = std::fs::File::open(path)?;
    let mut elf =
        ElfStream::open(std::io::BufReader::new(file)).map_err(streaming::stream_error)?;
    let isa = streaming::isa_of(&elf)?;

    let name = flags.algorithm.unwrap_or("samc");
    let algorithm = Algorithm::by_name(name)
        .ok_or_else(|| format!("unknown algorithm `{name}` (samc|sadc|huffman)"))?;
    if !algorithm.random_access() {
        return Err(format!(
            "`{algorithm}` is file-oriented; only random-access codecs fit the container"
        )
        .into());
    }

    // Training pass: model builders need full-text statistics, so the
    // section is buffered exactly once and dropped before the streaming
    // compression pass re-reads it block by block.
    let text = streaming::buffered_text(&mut elf)?;
    let codec: Box<dyn BlockCodec> = match flags.model_cache {
        Some(dir) => {
            if algorithm != Algorithm::Samc {
                return Err(format!("--model-cache caches SAMC models, not `{algorithm}`").into());
            }
            let mut trainer = open_model_cache(dir)?;
            let (config, optimize) = cache_request(isa, flags.block_size);
            let outcome = trainer.train(&text, &config, &optimize)?;
            println!(
                "model cache: {} (key {}, division {:016x})",
                outcome.source,
                outcome.key,
                outcome.codec.config().division.division_hash()
            );
            Box::new(outcome.codec)
        }
        None => {
            let handle = algorithm.build(isa, flags.block_size).train(&text)?;
            match handle {
                cce_core::CodecHandle::Block(codec) => codec,
                cce_core::CodecHandle::File(_) => {
                    unreachable!("random-access algorithms build block codecs")
                }
            }
        }
    };
    drop(text);
    let codec = codec.as_ref();

    if flags.elf.is_some() {
        print_section_stats(path, &streaming::section_stats(&elf));
    }

    // Stream into a sibling temp file and rename on success, so a failed
    // run never leaves a truncated artifact at the destination.
    let tmp = format!("{output}.tmp");
    let workers = worker_count();
    let result = std::fs::File::create(&tmp).map_err(Box::<dyn Error>::from).and_then(|out| {
        let out = std::io::BufWriter::new(out);
        Ok(streaming::compress_elf(&mut elf, algorithm, codec, out, workers)?)
    });
    let report = match result {
        Ok(report) => report,
        Err(e) => {
            std::fs::remove_file(&tmp).ok();
            return Err(e);
        }
    };
    std::fs::rename(&tmp, output)?;

    let summary = report.summary;
    println!(
        "{path}: {} -> {} bytes (text ratio {:.3}, artifact {} bytes)",
        summary.original_len,
        summary.compressed_len(),
        summary.ratio(),
        summary.total_len
    );
    println!(
        "  pipeline: {} blocks, peak queue {} (limit {}), {} stalls, {} workers",
        report.stats.blocks,
        report.stats.peak_queue,
        2 * workers,
        report.stats.stalls,
        workers
    );
    write_metrics(flags.metrics, "compress")
}

fn decompress(args: &[String]) -> Result<(), Box<dyn Error>> {
    let Flags { positional, output, .. } = split_flags(args)?;
    let [path] = positional.as_slice() else {
        return Err("usage: cce decompress <in.cce> -o <out.elf>".into());
    };
    let output = output.ok_or("missing -o <out.elf>")?;

    // Both container versions decode: v2 through the indexed streaming
    // reader, v1 (artifacts from older builds) through the monolithic
    // block image.  Unknown magic falls to the v1 parser for its typed
    // "bad magic" diagnostic.
    let (isa, class, endianness, entry, text) = match sniff_version(path)? {
        Some(2) => {
            let file = std::fs::File::open(path)?;
            let mut reader = ContainerV2Reader::open(std::io::BufReader::new(file))?;
            let identity = reader.identity();
            let codec_bytes = reader.codec_bytes().to_vec();
            let handle = identity
                .algorithm
                .build(identity.isa, reader.block_size())
                .codec_from_bytes(&codec_bytes)?;
            let codec = handle.as_block().expect("container tags are random-access");
            let text = reader.decode_text(codec)?;
            (identity.isa, identity.class, identity.endianness, identity.entry, text)
        }
        _ => {
            let bytes = std::fs::read(path)?;
            let Container { algorithm, isa, class, endianness, entry, codec_bytes, image_bytes } =
                Container::parse(&bytes)?;
            let image = BlockImage::from_bytes(image_bytes)?;
            let handle = algorithm.build(isa, image.block_size()).codec_from_bytes(codec_bytes)?;
            let codec = handle.as_block().expect("container tags are random-access");
            (isa, class, endianness, entry, codec.decompress(&image)?)
        }
    };

    let machine = match isa {
        Isa::Mips => Machine::Mips,
        Isa::X86 => Machine::I386,
    };
    let mut elf = ElfImage::new_executable(machine, class, endianness, text);
    elf.entry = entry;
    std::fs::write(output, elf.to_bytes())?;
    println!(
        "{path}: decompressed {} bytes of text into {output}",
        elf.text().expect("text").len()
    );
    Ok(())
}

/// Reads just the 4-byte magic of `path` and maps it through
/// [`container_version`]; `None` means unknown magic (or a file shorter
/// than a magic), which callers route to the v1 parser for its error.
fn sniff_version(path: &str) -> Result<Option<u8>, Box<dyn Error>> {
    use std::io::Read;
    let mut magic = [0u8; 4];
    match std::fs::File::open(path)?.read_exact(&mut magic) {
        Ok(()) => Ok(container_version(&magic)),
        Err(_) => Ok(None),
    }
}

fn analyze(args: &[String]) -> Result<(), Box<dyn Error>> {
    use cce_core::stats;
    let flags = split_flags(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err("usage: cce analyze <input.elf>".into());
    };
    let (elf, isa) = load_elf(path)?;
    let text = elf.text().ok_or("no .text section")?;
    println!("{path}: {} bytes of {isa} text", text.len());
    println!("  byte entropy:        {:.3} bits/byte", stats::byte_entropy(text));
    let positions = stats::position_entropy(text, 4);
    println!(
        "  per-byte-position:   [{:.2}, {:.2}, {:.2}, {:.2}] bits (stride 4)",
        positions[0], positions[1], positions[2], positions[3]
    );
    println!(
        "  word repeat ratio:   {:.1}% of 4-byte records repeat",
        100.0 * stats::repeat_ratio(text, 4)
    );
    if isa == Isa::Mips {
        let fields = stats::mips_field_stats(text)?;
        println!("  instructions:        {}", fields.instructions);
        println!("  distinct operations: {}", fields.distinct_operations);
        println!("  opcode entropy:      {:.3} bits/insn", fields.opcode_entropy);
        println!("  register entropy:    {:.3} bits/field", fields.register_entropy);
        println!("  imm16 entropy:       {:.3} bits/imm", fields.imm16_entropy);
        println!(
            "  field-coder bound:   {:.2} bits/insn  (ratio floor {:.3})",
            fields.field_bits_per_instruction,
            fields.field_bits_per_instruction / 32.0
        );
    }
    Ok(())
}

fn disasm(args: &[String]) -> Result<(), Box<dyn Error>> {
    use cce_core::isa::mips::decode_text;
    let Flags { positional, block_size: count, .. } = split_flags(args)?;
    let [path] = positional.as_slice() else {
        return Err("usage: cce disasm <input.elf> [-n COUNT]".into());
    };
    let (elf, isa) = load_elf(path)?;
    if isa != Isa::Mips {
        return Err("disassembly is only supported for MIPS executables".into());
    }
    let text = elf.text().ok_or("no .text section")?;
    let instructions = decode_text(text)?;
    let base = elf.section(".text").map_or(0, |s| s.addr);
    for (i, insn) in instructions.iter().take(count).enumerate() {
        println!("{:#010x}:  {:08x}  {insn}", base + 4 * i as u64, insn.encode());
    }
    if instructions.len() > count {
        println!("... {} more instructions", instructions.len() - count);
    }
    Ok(())
}

fn info(args: &[String]) -> Result<(), Box<dyn Error>> {
    let flags = split_flags(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err("usage: cce info <in.cce>".into());
    };
    if sniff_version(path)? == Some(2) {
        let file = std::fs::File::open(path)?;
        let reader = ContainerV2Reader::open(std::io::BufReader::new(file))?;
        let identity = reader.identity();
        let summary = reader.summary();
        println!("{path}:");
        println!("  container:  v2 (streamed, indexed)");
        println!("  codec:      {}", identity.algorithm);
        println!(
            "  isa:        {} ({:?}, {:?}, entry {:#x})",
            identity.isa, identity.class, identity.endianness, identity.entry
        );
        println!("  codec size: {} bytes", reader.codec_bytes().len());
        println!(
            "  text:       {} bytes in {} blocks of {}",
            summary.original_len,
            summary.blocks,
            reader.block_size()
        );
        println!(
            "  compressed: {} bytes (ratio {:.3}, model {} bytes, LAT {} bytes)",
            summary.compressed_len(),
            summary.ratio(),
            summary.model_bytes,
            summary.lat_bytes()
        );
        return Ok(());
    }
    let bytes = std::fs::read(path)?;
    let Container { algorithm, isa, class, endianness, entry, codec_bytes, image_bytes } =
        Container::parse(&bytes)?;
    let image = BlockImage::from_bytes(image_bytes)?;
    println!("{path}:");
    println!("  container:  v1 (monolithic image)");
    println!("  codec:      {algorithm}");
    println!("  isa:        {isa} ({class:?}, {endianness:?}, entry {entry:#x})");
    println!("  codec size: {} bytes", codec_bytes.len());
    println!(
        "  text:       {} bytes in {} blocks of {}",
        image.original_len(),
        image.block_count(),
        image.block_size()
    );
    println!(
        "  compressed: {} bytes (ratio {:.3}, model {} bytes, LAT {} bytes)",
        image.compressed_len(),
        image.ratio(),
        image.model_bytes(),
        image.lat_bytes()
    );
    Ok(())
}

/// `cce gen`: synthesizes one SPEC95-like workload as a minimal ELF, so
/// shell pipelines (and the CI cache smoke) can feed `cce compress` the
/// exact same deterministic program the benchmarks measure.
fn gen(args: &[String]) -> Result<(), Box<dyn Error>> {
    use cce_core::elf::{Class, Endianness};
    use cce_core::isa::mips::encode_text;
    use cce_core::workload::{generate_mips_seeded, generate_x86_seeded, Spec95};

    let Flags { positional, output, scale, seed, isa, multi_section, .. } = split_flags(args)?;
    let [name] = positional.as_slice() else {
        return Err(
            "usage: cce gen <profile> [--scale F] [--seed S] [--isa mips|x86] [--multi-section] \
             -o <out.elf>"
                .into(),
        );
    };
    let output = output.ok_or("missing -o <out.elf>")?;
    let profile =
        Spec95::by_name(name).ok_or_else(|| format!("unknown benchmark profile `{name}`"))?;
    let isa = match isa.unwrap_or("mips") {
        "mips" => Isa::Mips,
        "x86" => Isa::X86,
        other => return Err(format!("unknown ISA `{other}` (mips|x86)").into()),
    };
    let (machine, endianness, text) = match isa {
        Isa::Mips => (
            Machine::Mips,
            Endianness::Big,
            encode_text(&generate_mips_seeded(profile, scale, seed)),
        ),
        Isa::X86 => (Machine::I386, Endianness::Little, generate_x86_seeded(profile, scale, seed)),
    };
    let mut elf = ElfImage::new_executable(machine, Class::Elf32, endianness, text);
    if multi_section {
        push_workload_sections(&mut elf, seed);
    }
    std::fs::write(output, elf.to_bytes())?;
    println!(
        "{output}: {} bytes of {isa} `{name}` text at scale {scale} (seed {seed})",
        elf.text().expect("text").len()
    );
    if multi_section {
        println!("{output}: {} sections (multi-section workload)", elf.sections.len());
    }
    Ok(())
}

/// `--multi-section`: surrounds the text with deterministic `.rodata`
/// and `.bss` sections, so streaming-path fixtures exercise section
/// selection rather than a single-section fast path.  The `.rodata`
/// bytes come from a seeded xorshift, making the whole file a pure
/// function of (profile, scale, seed).
fn push_workload_sections(elf: &mut ElfImage, seed: u64) {
    use cce_core::elf::{Section, SectionKind};
    let text_len = elf.text().expect("text").len() as u64;
    let base = elf.entry;
    let rodata_len = (text_len / 4).max(64);
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let rodata: Vec<u8> = (0..rodata_len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u8
        })
        .collect();
    elf.sections.push(Section {
        name: ".rodata".to_owned(),
        kind: SectionKind::ProgBits,
        flags: 0x2, // SHF_ALLOC
        addr: base + text_len,
        data: rodata,
        nobits_size: 0,
    });
    elf.sections.push(Section {
        name: ".bss".to_owned(),
        kind: SectionKind::NoBits,
        flags: 0x2 | 0x1, // SHF_ALLOC | SHF_WRITE
        addr: base + text_len + rodata_len,
        data: Vec::new(),
        nobits_size: 4096,
    });
}

fn fuzz(args: &[String]) -> Result<(), Box<dyn Error>> {
    let Flags { positional, algorithm, cases, seed, .. } = split_flags(args)?;
    if !positional.is_empty() {
        return Err("usage: cce fuzz --algo <name|all> --cases N --seed S".into());
    }
    let config = FuzzConfig { cases, seed };
    let reports = match algorithm.unwrap_or("all") {
        "all" => cce_core::fuzz::run_all(&config),
        "serve" => cce_core::fuzz::run_serve(&config),
        name => {
            let algorithm = Algorithm::by_name(name)
                .ok_or_else(|| format!("unknown algorithm `{name}` (or `all`)"))?;
            cce_core::fuzz::run(algorithm, &config)
        }
    };
    let mut dirty = 0usize;
    for report in &reports {
        println!("{}", report.summary());
        for failure in &report.failures {
            println!("    {failure}");
        }
        if !report.is_clean() {
            dirty += 1;
        }
    }
    if dirty > 0 {
        return Err(format!("{dirty} of {} targets reported failures", reports.len()).into());
    }
    println!("all {} targets clean ({cases} cases each, seed {seed})", reports.len());
    Ok(())
}

fn publish(args: &[String]) -> Result<(), Box<dyn Error>> {
    let flags = split_flags(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err("usage: cce publish <in.cce> -o <dir> [--chunk-size N]".into());
    };
    let output = flags.output.ok_or("missing -o <dir>")?;
    if sniff_version(path)? != Some(2) {
        return Err(
            format!("{path}: only indexed v2 containers publish (re-run `cce compress`)").into()
        );
    }
    let file = std::fs::File::open(path)?;
    let mut reader = ContainerV2Reader::open(std::io::BufReader::new(file))?;
    let summary =
        cce_core::artifact::publish_container(&mut reader, Path::new(output), flags.chunk_size)?;
    println!(
        "{path}: published {} blocks ({} bytes) into {} chunk files under {output}",
        summary.manifest.blocks, summary.manifest.data_len, summary.chunk_files,
    );
    write_metrics(flags.metrics, "publish")
}

fn verify(args: &[String]) -> Result<(), Box<dyn Error>> {
    let flags = split_flags(args)?;
    let [dir] = flags.positional.as_slice() else {
        return Err("usage: cce verify <dir>".into());
    };
    let summary = cce_core::serve::verify_dir(Path::new(dir))?;
    println!(
        "{dir}: OK — {} blocks in {} chunks, {} compressed bytes ({} original)",
        summary.blocks, summary.chunks, summary.data_len, summary.original_len,
    );
    write_metrics(flags.metrics, "verify")
}

fn serve(args: &[String]) -> Result<(), Box<dyn Error>> {
    use cce_core::serve::{ServeConfig, Server};
    let flags = split_flags(args)?;
    let [dir] = flags.positional.as_slice() else {
        return Err("usage: cce serve <dir> --socket PATH | --tcp ADDR".into());
    };
    let (artifact, codec) = cce_core::artifact::open_with_codec(Path::new(dir))?;
    let blocks = artifact.block_count();
    let config = ServeConfig {
        request_timeout: std::time::Duration::from_millis(flags.timeout_ms),
        cache_blocks: flags.cache,
        ..ServeConfig::default()
    };
    let server = Server::new(artifact, codec, config);
    match (flags.socket, flags.tcp) {
        (Some(path), None) => {
            println!("serving {blocks} blocks from {dir} on unix socket {path}");
            server.serve_unix(Path::new(path))?;
        }
        (None, Some(addr)) => {
            server.serve_tcp(addr, |local| {
                println!("serving {blocks} blocks from {dir} on tcp {local}");
            })?;
        }
        _ => return Err("pass exactly one of --socket PATH or --tcp ADDR".into()),
    }
    println!("shutdown: {}", server.stats_json());
    write_metrics(flags.metrics, "serve")
}

fn fetch(args: &[String]) -> Result<(), Box<dyn Error>> {
    use cce_core::serve::Client;
    let flags = split_flags(args)?;
    if !flags.positional.is_empty() {
        return Err("usage: cce fetch --socket PATH | --tcp ADDR -o <out.elf>".into());
    }
    let output = flags.output.ok_or("missing -o <out.elf>")?;
    match (flags.socket, flags.tcp) {
        (Some(path), None) => fetch_with(Client::connect_unix(Path::new(path))?, output),
        (None, Some(addr)) => fetch_with(Client::connect_tcp(addr)?, output),
        _ => Err("pass exactly one of --socket PATH or --tcp ADDR".into()),
    }
}

/// The reference-client body of `cce fetch`: pulls the manifest, decodes
/// every block over the wire, and writes the same minimal ELF
/// `decompress` produces (so the two outputs byte-compare in CI).
fn fetch_with<S: std::io::Read + std::io::Write>(
    mut client: cce_core::serve::Client<S>,
    output: &str,
) -> Result<(), Box<dyn Error>> {
    let manifest = cce_core::serve::Manifest::parse(&client.get_manifest()?)?;
    let (isa, class, endianness, entry) = cce_core::artifact::manifest_identity(&manifest)?;
    let mut text = Vec::with_capacity(manifest.original_len as usize);
    for block in 0..manifest.blocks {
        text.extend_from_slice(&client.decode_block(block)?);
    }
    if text.len() as u64 != manifest.original_len {
        return Err(format!(
            "fetched {} decoded bytes but the manifest promises {}",
            text.len(),
            manifest.original_len
        )
        .into());
    }
    client.shutdown()?;
    let machine = match isa {
        Isa::Mips => Machine::Mips,
        Isa::X86 => Machine::I386,
    };
    let mut elf = ElfImage::new_executable(machine, class, endianness, text);
    elf.entry = entry;
    std::fs::write(output, elf.to_bytes())?;
    println!(
        "fetched {} blocks ({} bytes of text) into {output}",
        manifest.blocks,
        elf.text().expect("text").len()
    );
    Ok(())
}
