//! Machine-readable reporting: a tiny hand-rolled JSON writer shared by
//! the `cce ratio --json` CLI flow and the figure harness's JSON
//! reporter.
//!
//! The workspace builds without external dependencies, so this module
//! provides just enough JSON — escaped strings, finite-checked numbers,
//! and a [`Measurement`] renderer — rather than pulling in a serializer.

use crate::Measurement;

/// Escapes and quotes `s` as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders `value` as a JSON number (`null` when not finite).
pub fn json_number(value: f64) -> String {
    if value.is_finite() {
        // Enough digits to reconstruct the ratio; trailing zeros trimmed
        // by using the shortest round-trip representation.
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// Renders one [`Measurement`] as a JSON object.
///
/// Fields: `algorithm`, `isa`, `original_len`, `compressed_len`,
/// `ratio`, `random_access`, `block_count` and `lat_bytes` (both `null`
/// for file-oriented algorithms).
pub fn measurement_json(m: &Measurement) -> String {
    let block_count = m.block_sizes().map_or("null".to_string(), |sizes| sizes.len().to_string());
    let lat = m.lat_bytes().map_or("null".to_string(), |b| b.to_string());
    format!(
        "{{\"algorithm\":{},\"isa\":{},\"original_len\":{},\"compressed_len\":{},\
         \"ratio\":{},\"random_access\":{},\"block_count\":{},\"lat_bytes\":{}}}",
        json_string(&m.algorithm().to_string()),
        json_string(&m.isa().to_string()),
        m.original_len(),
        m.compressed_len(),
        json_number(m.ratio()),
        m.random_access(),
        block_count,
        lat,
    )
}

/// Renders a list of measurements (one per algorithm) as a JSON array.
pub fn measurements_json(measurements: &[Measurement]) -> String {
    let items: Vec<String> = measurements.iter().map(measurement_json).collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{measure, Algorithm};
    use cce_isa::Isa;

    #[test]
    fn strings_escape_cleanly() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_handle_non_finite() {
        assert_eq!(json_number(0.5), "0.5");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
    }

    #[test]
    fn measurement_renders_expected_fields() {
        let profile = cce_workload::Spec95::by_name("ijpeg").unwrap();
        let text = cce_isa::mips::encode_text(&cce_workload::generate_mips(profile, 0.05));
        let m = measure(Algorithm::Samc, Isa::Mips, &text, 32).unwrap();
        let json = measurement_json(&m);
        assert!(json.starts_with("{\"algorithm\":\"SAMC\""), "{json}");
        assert!(json.contains("\"random_access\":true"), "{json}");
        assert!(!json.contains("\"lat_bytes\":null"), "{json}");

        let file = measure(Algorithm::Gzip, Isa::Mips, &text, 32).unwrap();
        let json = measurement_json(&file);
        assert!(json.contains("\"block_count\":null"), "{json}");
        assert!(json.contains("\"lat_bytes\":null"), "{json}");

        let both = measurements_json(&[m, file]);
        assert!(both.starts_with('[') && both.ends_with(']'));
        assert_eq!(both.matches("\"algorithm\"").count(), 2);
    }
}
