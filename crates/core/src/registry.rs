//! Algorithm registry: the one place that knows how to build every codec.
//!
//! [`Algorithm`] enumerates the five compressors of the paper's
//! evaluation; [`Algorithm::build`] turns one into a [`CodecBuilder`]
//! bound to an ISA and block size, and the builder produces a
//! [`CodecHandle`] — either a `Box<dyn BlockCodec>` (random-access) or a
//! `Box<dyn FileCodec>` (whole-file baseline).  The measurement harness,
//! the `cce` CLI container format, and the conformance suite all go
//! through this registry, so adding a codec means touching exactly one
//! match per capability.

use cce_codec::{BlockCodec, CodecError, FileCodec};
use cce_huffman::block::ByteBlockCodec;
use cce_isa::Isa;
use cce_lz::{Gzip, Lzw};
use cce_rans::{Lanes, SamcRansCodec};
use cce_sadc::{MipsSadc, MipsSadcConfig, X86Sadc, X86SadcConfig};
use cce_samc::{SamcCodec, SamcConfig};
use std::fmt;

/// The compression algorithms compared in the paper's evaluation (§5),
/// plus the interleaved-rANS variant of SAMC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// UNIX `compress` (LZW) — file-oriented baseline.
    UnixCompress,
    /// `gzip` (LZ77 + Huffman) — file-oriented baseline.
    Gzip,
    /// Byte-based Huffman with block restart (Kozuch & Wolfe).
    ByteHuffman,
    /// SAMC — semiadaptive Markov compression (this paper).
    Samc,
    /// SADC — semiadaptive dictionary compression (this paper).
    Sadc,
    /// SAMC's Markov models over a 4-way interleaved rANS coder.
    SamcRans,
}

impl Algorithm {
    /// All algorithms, in the figures' legend order (extensions last).
    pub const ALL: [Algorithm; 6] = [
        Algorithm::UnixCompress,
        Algorithm::Gzip,
        Algorithm::ByteHuffman,
        Algorithm::Samc,
        Algorithm::Sadc,
        Algorithm::SamcRans,
    ];

    /// Whether this algorithm supports cache-block random access (the
    /// property a compressed-code memory system requires).
    pub fn random_access(self) -> bool {
        !matches!(self, Algorithm::UnixCompress | Algorithm::Gzip)
    }

    /// Parses a CLI-style algorithm name (as printed by `Display`,
    /// case-insensitive).
    pub fn by_name(name: &str) -> Option<Algorithm> {
        match name.to_ascii_lowercase().as_str() {
            "compress" | "lzw" => Some(Algorithm::UnixCompress),
            "gzip" => Some(Algorithm::Gzip),
            "huffman" => Some(Algorithm::ByteHuffman),
            "samc" => Some(Algorithm::Samc),
            "sadc" => Some(Algorithm::Sadc),
            "samc-rans" | "rans" => Some(Algorithm::SamcRans),
            _ => None,
        }
    }

    /// Stable one-byte tag used by the `.cce` container format.
    pub fn tag(self) -> u8 {
        match self {
            Algorithm::UnixCompress => 0,
            Algorithm::Gzip => 1,
            Algorithm::ByteHuffman => 2,
            Algorithm::Samc => 3,
            Algorithm::Sadc => 4,
            Algorithm::SamcRans => 5,
        }
    }

    /// Inverse of [`Algorithm::tag`].
    pub fn from_tag(tag: u8) -> Option<Algorithm> {
        Algorithm::ALL.into_iter().find(|a| a.tag() == tag)
    }

    /// Binds the algorithm to an ISA and block size, yielding a builder
    /// that can train or deserialize the concrete codec.
    pub fn build(self, isa: Isa, block_size: usize) -> CodecBuilder {
        CodecBuilder { algorithm: self, isa, block_size }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Algorithm::UnixCompress => "compress",
            Algorithm::Gzip => "gzip",
            Algorithm::ByteHuffman => "huffman",
            Algorithm::Samc => "SAMC",
            Algorithm::Sadc => "SADC",
            Algorithm::SamcRans => "samc-rans",
        };
        write!(f, "{name}")
    }
}

/// An [`Algorithm`] bound to an ISA and block size — everything needed to
/// construct the concrete codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecBuilder {
    algorithm: Algorithm,
    isa: Isa,
    block_size: usize,
}

impl CodecBuilder {
    /// The algorithm this builder constructs.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The bound instruction set.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// The bound uncompressed block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Trains the codec on `text` (file codecs need no training and
    /// always succeed).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Train`] when the text cannot train the
    /// model (empty input, undecodable instructions, …).
    pub fn train(&self, text: &[u8]) -> Result<CodecHandle, CodecError> {
        Ok(match self.algorithm {
            Algorithm::UnixCompress => CodecHandle::File(Box::new(Lzw::new())),
            Algorithm::Gzip => CodecHandle::File(Box::new(Gzip::new())),
            Algorithm::ByteHuffman => {
                CodecHandle::Block(Box::new(ByteBlockCodec::train(text, self.block_size)?))
            }
            Algorithm::Samc => {
                let config = match self.isa {
                    Isa::Mips => SamcConfig::mips(),
                    Isa::X86 => SamcConfig::x86(),
                }
                .with_block_size(self.block_size);
                CodecHandle::Block(Box::new(SamcCodec::train(text, config)?))
            }
            Algorithm::SamcRans => {
                let config = match self.isa {
                    Isa::Mips => SamcConfig::mips(),
                    Isa::X86 => SamcConfig::x86(),
                }
                .with_block_size(self.block_size);
                CodecHandle::Block(Box::new(SamcRansCodec::train(text, config, Lanes::default())?))
            }
            Algorithm::Sadc => match self.isa {
                Isa::Mips => {
                    let config =
                        MipsSadcConfig { block_size: self.block_size, ..Default::default() };
                    CodecHandle::Block(Box::new(MipsSadc::train(text, config)?))
                }
                Isa::X86 => {
                    let config =
                        X86SadcConfig { block_size: self.block_size, ..Default::default() };
                    CodecHandle::Block(Box::new(X86Sadc::train(text, config)?))
                }
            },
        })
    }

    /// Deserializes a trained codec previously written with
    /// [`BlockCodec::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Corrupt`] on malformed bytes and
    /// [`CodecError::Unsupported`] for the file-oriented baselines, which
    /// carry no trained model to restore.
    pub fn codec_from_bytes(&self, bytes: &[u8]) -> Result<CodecHandle, CodecError> {
        Ok(match self.algorithm {
            Algorithm::UnixCompress | Algorithm::Gzip => {
                return Err(CodecError::unsupported(
                    match self.algorithm {
                        Algorithm::UnixCompress => "compress",
                        _ => "gzip",
                    },
                    "file-oriented baselines have no serialized codec form",
                ))
            }
            Algorithm::ByteHuffman => {
                CodecHandle::Block(Box::new(ByteBlockCodec::from_bytes(bytes)?))
            }
            Algorithm::Samc => CodecHandle::Block(Box::new(SamcCodec::from_bytes(bytes)?)),
            Algorithm::SamcRans => CodecHandle::Block(Box::new(SamcRansCodec::from_bytes(bytes)?)),
            Algorithm::Sadc => match self.isa {
                Isa::Mips => CodecHandle::Block(Box::new(MipsSadc::from_bytes(bytes)?)),
                Isa::X86 => CodecHandle::Block(Box::new(X86Sadc::from_bytes(bytes)?)),
            },
        })
    }
}

/// A constructed codec: block-random-access or whole-file.
pub enum CodecHandle {
    /// A random-access codec ([`BlockCodec`]).
    Block(Box<dyn BlockCodec>),
    /// A file-oriented baseline ([`FileCodec`]).
    File(Box<dyn FileCodec>),
}

impl CodecHandle {
    /// The codec's display name.
    pub fn name(&self) -> &'static str {
        match self {
            CodecHandle::Block(c) => c.name(),
            CodecHandle::File(c) => c.name(),
        }
    }

    /// The codec as a [`BlockCodec`], if it is one.
    pub fn as_block(&self) -> Option<&dyn BlockCodec> {
        match self {
            CodecHandle::Block(c) => Some(c.as_ref()),
            CodecHandle::File(_) => None,
        }
    }

    /// The codec as a [`FileCodec`], if it is one.
    pub fn as_file(&self) -> Option<&dyn FileCodec> {
        match self {
            CodecHandle::Block(_) => None,
            CodecHandle::File(c) => Some(c.as_ref()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_round_trip() {
        for algorithm in Algorithm::ALL {
            assert_eq!(Algorithm::from_tag(algorithm.tag()), Some(algorithm));
        }
        assert_eq!(Algorithm::from_tag(0xFF), None);
    }

    #[test]
    fn names_round_trip_through_display() {
        for algorithm in Algorithm::ALL {
            assert_eq!(Algorithm::by_name(&algorithm.to_string()), Some(algorithm));
        }
        assert_eq!(Algorithm::by_name("lzw"), Some(Algorithm::UnixCompress));
        assert_eq!(Algorithm::by_name("made-up"), None);
    }

    #[test]
    fn handles_match_random_access() {
        let profile = cce_workload::Spec95::by_name("ijpeg").unwrap();
        let text = cce_isa::mips::encode_text(&cce_workload::generate_mips(profile, 0.02));
        for algorithm in Algorithm::ALL {
            let handle = algorithm.build(Isa::Mips, 32).train(&text).unwrap();
            assert_eq!(handle.as_block().is_some(), algorithm.random_access(), "{algorithm}");
            assert_eq!(handle.as_file().is_some(), !algorithm.random_access(), "{algorithm}");
        }
    }

    #[test]
    fn file_codecs_have_no_serialized_form() {
        let builder = Algorithm::Gzip.build(Isa::Mips, 32);
        assert!(matches!(
            builder.codec_from_bytes(&[]),
            Err(CodecError::Unsupported { codec: "gzip", .. })
        ));
    }
}
