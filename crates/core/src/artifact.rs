//! Bridge between the `.cce` v2 container and the serving tier.
//!
//! The serving crate ([`cce_serve`]) is codec-generic: it stores the
//! codec identity as registry *names* and knows nothing about
//! containers.  This module is the glue — it maps a
//! [`ContainerV2Reader`]'s identity into an [`ArtifactMeta`], streams
//! every container block through a [`Publisher`]
//! ([`publish_container`]), and rebuilds the concrete codec from a
//! manifest's `algorithm`/`isa` strings plus the published model bytes
//! ([`codec_from_manifest`]).  The numeric tags mirror the container
//! encoding exactly: class 0 = ELF32 / 1 = ELF64, endianness 0 =
//! little / 1 = big.

use crate::container::ContainerV2Reader;
use crate::registry::{Algorithm, CodecHandle};
use cce_codec::BlockCodec;
use cce_elf::{Class, Endianness};
use cce_isa::Isa;
use cce_serve::publish::{ArtifactMeta, PublishSummary, Publisher};
use cce_serve::store::Artifact;
use cce_serve::{Manifest, ServeError};
use std::io::{Read, Seek};
use std::path::Path;

/// The lowercase registry name stored in manifests for `algorithm`
/// (round-trips through [`Algorithm::by_name`]).
pub fn registry_name(algorithm: Algorithm) -> &'static str {
    match algorithm {
        Algorithm::UnixCompress => "compress",
        Algorithm::Gzip => "gzip",
        Algorithm::ByteHuffman => "huffman",
        Algorithm::Samc => "samc",
        Algorithm::Sadc => "sadc",
        Algorithm::SamcRans => "samc-rans",
    }
}

/// The lowercase ISA name stored in manifests for `isa`.
pub fn isa_name(isa: Isa) -> &'static str {
    match isa {
        Isa::Mips => "mips",
        Isa::X86 => "x86",
    }
}

/// Parses a manifest `isa` string (case-insensitive).
pub fn isa_by_name(name: &str) -> Option<Isa> {
    match name.to_ascii_lowercase().as_str() {
        "mips" => Some(Isa::Mips),
        "x86" => Some(Isa::X86),
        _ => None,
    }
}

/// The [`ArtifactMeta`] describing an open v2 container.
pub fn container_meta<R: Read + Seek>(reader: &ContainerV2Reader<R>) -> ArtifactMeta {
    let identity = reader.identity();
    ArtifactMeta {
        algorithm: registry_name(identity.algorithm).to_string(),
        isa: isa_name(identity.isa).to_string(),
        class: match identity.class {
            Class::Elf32 => 0,
            Class::Elf64 => 1,
        },
        endianness: match identity.endianness {
            Endianness::Little => 0,
            Endianness::Big => 1,
        },
        entry: identity.entry,
        block_size: reader.block_size() as u64,
        model_bytes: reader.summary().model_bytes as u64,
    }
}

/// Publishes an open v2 container into the artifact directory `dir`:
/// the serialized codec becomes `model.bin` and every compressed block
/// streams, in index order, into `chunk_payload`-sized chunk files.
///
/// # Errors
///
/// [`ServeError::Io`] when `dir` exists non-empty or a write fails;
/// [`ServeError::Corrupt`] when the container geometry violates the
/// artifact caps, or (via [`From`]) when a container block read fails.
pub fn publish_container<R: Read + Seek>(
    reader: &mut ContainerV2Reader<R>,
    dir: &Path,
    chunk_payload: u64,
) -> Result<PublishSummary, ServeError> {
    let meta = container_meta(reader);
    let codec_bytes = reader.codec_bytes().to_vec();
    let mut publisher = Publisher::create(dir, meta, &codec_bytes, chunk_payload)?;
    for index in 0..reader.block_count() {
        let (data, uncompressed_len) = reader.read_block(index)?;
        publisher.push_block(&data, uncompressed_len)?;
    }
    publisher.finish()
}

/// Rebuilds the concrete codec a manifest names, from the published
/// `model.bin` bytes.
///
/// # Errors
///
/// [`ServeError::Corrupt`] on an unknown algorithm/ISA name or a
/// file-oriented algorithm (those never serve blocks), and any
/// [`codec_from_bytes`](crate::registry::CodecBuilder::codec_from_bytes)
/// parse failure.
pub fn codec_from_manifest(
    manifest: &Manifest,
    model: &[u8],
) -> Result<Box<dyn BlockCodec>, ServeError> {
    let algorithm = Algorithm::by_name(&manifest.algorithm).ok_or_else(|| {
        ServeError::corrupt("manifest", format!("unknown algorithm {:?}", manifest.algorithm))
    })?;
    if !algorithm.random_access() {
        return Err(ServeError::corrupt(
            "manifest",
            format!("`{algorithm}` is file-oriented; only random-access codecs serve blocks"),
        ));
    }
    let isa = isa_by_name(&manifest.isa).ok_or_else(|| {
        ServeError::corrupt("manifest", format!("unknown isa {:?}", manifest.isa))
    })?;
    let handle = algorithm.build(isa, manifest.block_size as usize).codec_from_bytes(model)?;
    match handle {
        CodecHandle::Block(codec) => Ok(codec),
        CodecHandle::File(_) => Err(ServeError::corrupt(
            "manifest",
            format!("`{algorithm}` deserialized to a non-block codec"),
        )),
    }
}

/// Opens `dir` and rebuilds its codec: the one-call path `cce serve`
/// and `cce fetch` use.
///
/// # Errors
///
/// Any [`Artifact::open`], model-digest, or [`codec_from_manifest`]
/// failure.
pub fn open_with_codec(dir: &Path) -> Result<(Artifact, Box<dyn BlockCodec>), ServeError> {
    let artifact = Artifact::open(dir)?;
    let model = artifact.read_model()?;
    let codec = codec_from_manifest(artifact.manifest(), &model)?;
    Ok((artifact, codec))
}

/// The ELF identity a manifest carries, for rebuilding an executable
/// around fetched text (the `cce fetch` output path).
///
/// # Errors
///
/// [`ServeError::Corrupt`] on an out-of-range tag or unknown ISA name.
pub fn manifest_identity(manifest: &Manifest) -> Result<(Isa, Class, Endianness, u64), ServeError> {
    let isa = isa_by_name(&manifest.isa).ok_or_else(|| {
        ServeError::corrupt("manifest", format!("unknown isa {:?}", manifest.isa))
    })?;
    let class = match manifest.class {
        0 => Class::Elf32,
        1 => Class::Elf64,
        other => return Err(ServeError::corrupt("manifest", format!("class tag {other}"))),
    };
    let endianness = match manifest.endianness {
        0 => Endianness::Little,
        1 => Endianness::Big,
        other => return Err(ServeError::corrupt("manifest", format!("endianness tag {other}"))),
    };
    Ok((isa, class, endianness, manifest.entry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{ContainerIdentity, ContainerWriter};
    use cce_codec::pipeline::CompressedBlock;
    use cce_codec::BlockSink;
    use cce_serve::verify_dir;
    use std::fs;
    use std::io::Cursor;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cce-core-artifact-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// A trained huffman container over a small MIPS workload, in memory.
    fn sample_container() -> Vec<u8> {
        use cce_workload::{generate_mips, Spec95};
        let profile = Spec95::by_name("ijpeg").unwrap();
        let mut text = cce_isa::mips::encode_text(&generate_mips(profile, 0.02));
        text.truncate(4096);
        let handle = Algorithm::ByteHuffman.build(Isa::Mips, 32).train(&text).unwrap();
        let codec = handle.as_block().unwrap();
        let image = codec.compress(&text).unwrap();
        let identity = ContainerIdentity {
            algorithm: Algorithm::ByteHuffman,
            isa: Isa::Mips,
            class: Class::Elf32,
            endianness: Endianness::Big,
            entry: 0x40_0000,
        };
        let codec_bytes = codec.to_bytes();
        let mut bytes = Vec::new();
        let mut writer =
            ContainerWriter::new(&mut bytes, identity, 32, codec.model_bytes(), &codec_bytes)
                .unwrap();
        for index in 0..image.block_count() {
            writer
                .accept(CompressedBlock {
                    index,
                    uncompressed_len: image.block_uncompressed_len(index),
                    data: image.block(index).to_vec(),
                })
                .unwrap();
        }
        writer.finish().unwrap();
        bytes
    }

    #[test]
    fn published_container_verifies_and_matches_its_summary() {
        let container = sample_container();
        let mut reader = ContainerV2Reader::open(Cursor::new(&container)).unwrap();
        let summary = reader.summary();
        let dir = temp_dir("publish");
        let published = publish_container(&mut reader, &dir, 1024).unwrap();
        let m = &published.manifest;
        assert_eq!(m.algorithm, "huffman");
        assert_eq!(m.isa, "mips");
        assert_eq!(m.blocks as usize, summary.blocks);
        assert_eq!(m.original_len, summary.original_len);
        assert_eq!(m.data_len, summary.data_len);
        assert_eq!(m.model_bytes as usize, summary.model_bytes);
        let verified = verify_dir(&dir).unwrap();
        assert_eq!(verified.blocks, m.blocks);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn published_artifact_decodes_byte_identically_to_the_container() {
        let container = sample_container();
        let mut reader = ContainerV2Reader::open(Cursor::new(&container)).unwrap();
        let dir = temp_dir("decode");
        publish_container(&mut reader, &dir, 512).unwrap();
        let (artifact, codec) = open_with_codec(&dir).unwrap();
        let served = artifact.decode_text(codec.as_ref()).unwrap();
        let direct = {
            let mut reader = ContainerV2Reader::open(Cursor::new(&container)).unwrap();
            let handle = Algorithm::ByteHuffman
                .build(Isa::Mips, reader.block_size())
                .codec_from_bytes(reader.codec_bytes())
                .unwrap();
            reader.decode_text(handle.as_block().unwrap()).unwrap()
        };
        assert_eq!(served, direct);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn names_round_trip_and_file_codecs_are_refused() {
        for algorithm in Algorithm::ALL {
            assert_eq!(Algorithm::by_name(registry_name(algorithm)), Some(algorithm));
        }
        for isa in [Isa::Mips, Isa::X86] {
            assert_eq!(isa_by_name(isa_name(isa)), Some(isa));
        }
        assert_eq!(isa_by_name("arm"), None);
        let container = sample_container();
        let mut reader = ContainerV2Reader::open(Cursor::new(&container)).unwrap();
        let dir = temp_dir("refuse");
        let mut manifest = publish_container(&mut reader, &dir, 1024).unwrap().manifest;
        manifest.algorithm = "gzip".into();
        let err = match codec_from_manifest(&manifest, b"") {
            Ok(_) => panic!("file-oriented algorithm built a block codec"),
            Err(err) => err,
        };
        assert!(err.to_string().contains("file-oriented"), "{err}");
        assert!(matches!(err, ServeError::Corrupt { .. }));
        fs::remove_dir_all(&dir).unwrap();
    }
}
