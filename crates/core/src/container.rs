//! The `.cce` container formats shared by the CLI and the fuzz harness.
//!
//! A `.cce` artifact packages everything the decompressor needs: the
//! trained codec model, the compressed blocks, and enough ELF identity
//! (ISA, class, endianness, entry point) to rebuild a loadable
//! executable around the decompressed text section.  Two versions
//! coexist (all integers big-endian):
//!
//! **v1** — buffer-oriented, produced by the in-memory compress path.
//! The block payload is a serialized [`BlockImage`], so the whole
//! artifact must be in memory to parse:
//!
//! ```text
//! offset  size  field
//!      0     4  magic "CCEF"
//!      4    12  identity (tag, isa, class, endianness, entry)
//!     16     4  codec model length N
//!     20     N  serialized codec model
//!   20+N     —  serialized BlockImage
//! ```
//!
//! **v2** — stream-oriented, produced by the bounded-memory pipeline.
//! Blocks are appended raw as the pipeline drains (the writer is a
//! [`BlockSink`]), and a per-block offset index lands *after* the data
//! so the whole artifact is written in one forward pass.  A fixed-size
//! footer points back at the index, so a reader seeks to any single
//! block without touching the ones before it:
//!
//! ```text
//! offset  size  field
//!      0     4  magic "CCE2"
//!      4    12  identity (tag, isa, class, endianness, entry)
//!     16     4  nominal block size
//!     20     4  codec model bytes charged to the image (accounting)
//!     24     4  codec model length N
//!     28     N  serialized codec model
//!   28+N     D  compressed blocks, concatenated in index order
//! 28+N+D  16×B index: per block u64 offset (into D), u32 compressed
//!               length, u32 uncompressed length
//!    end    28  footer: u64 index offset, u64 block count B,
//!               u64 original text length, magic "CIDX"
//! ```
//!
//! The shared 12-byte identity block is encoded and parsed by one pair
//! of helpers, so the two versions cannot drift.  v2 parsing enforces
//! the same corruption caps as [`BlockImage::from_bytes`]
//! ([`BlockImage::MAX_BLOCK_SIZE`], [`BlockImage::BLOCK_SLACK`], dense
//! canonical offsets) so a tampered index cannot demand unbounded
//! output or out-of-extent reads.

use std::io::{Read, Seek, SeekFrom, Write};

use crate::registry::Algorithm;
use cce_codec::pipeline::{BlockSink, CompressedBlock};
use cce_codec::{BlockCodec, BlockImage, CodecError};
use cce_elf::{Class, Endianness};
use cce_isa::Isa;

/// Magic number opening a v1 `.cce` container.
pub const CONTAINER_MAGIC: &[u8; 4] = b"CCEF";

/// Magic number opening a v2 (streamed, indexed) `.cce` container.
pub const CONTAINER_V2_MAGIC: &[u8; 4] = b"CCE2";

/// Magic number closing the v2 footer.
const INDEX_MAGIC: &[u8; 4] = b"CIDX";

/// Name used in [`CodecError::Corrupt`] raised by container parsing.
const SELF: &str = "container";

/// Byte length of the shared identity block (tag through entry point).
const IDENTITY_LEN: usize = 12;

/// Fixed v2 header length: magic + identity + block size + model bytes
/// + codec length.
const V2_HEADER_LEN: usize = 4 + IDENTITY_LEN + 4 + 4 + 4;

/// Bytes per v2 index entry: u64 offset + u32 compressed + u32
/// uncompressed.
const INDEX_ENTRY_LEN: usize = 16;

/// Fixed v2 footer length: index offset + block count + original length
/// + magic.
const V2_FOOTER_LEN: usize = 8 + 8 + 8 + 4;

/// The executable identity stamped into every container version: which
/// codec produced the blocks and what ELF shell to rebuild around the
/// decompressed text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainerIdentity {
    /// The codec that produced the blocks (always random-access).
    pub algorithm: Algorithm,
    /// Instruction set of the compressed text.
    pub isa: Isa,
    /// ELF class of the original executable.
    pub class: Class,
    /// Endianness of the original executable.
    pub endianness: Endianness,
    /// ELF entry point of the original executable.
    pub entry: u64,
}

impl ContainerIdentity {
    /// Appends the 12-byte identity encoding shared by both versions.
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.algorithm.tag());
        out.push(match self.isa {
            Isa::Mips => 0,
            Isa::X86 => 1,
        });
        out.push(match self.class {
            Class::Elf32 => 0,
            Class::Elf64 => 1,
        });
        out.push(match self.endianness {
            Endianness::Little => 0,
            Endianness::Big => 1,
        });
        out.extend_from_slice(&self.entry.to_be_bytes());
    }

    /// Parses the 12-byte identity block shared by both versions.
    ///
    /// # Errors
    ///
    /// [`CodecError::Corrupt`] on an unknown or file-oriented codec tag
    /// or an unknown ISA tag.
    fn parse(bytes: &[u8; IDENTITY_LEN]) -> Result<Self, CodecError> {
        let algorithm = Algorithm::from_tag(bytes[0])
            .ok_or_else(|| CodecError::corrupt(SELF, "unknown codec tag"))?;
        if !algorithm.random_access() {
            return Err(CodecError::corrupt(SELF, "container holds a file-oriented codec tag"));
        }
        let isa = match bytes[1] {
            0 => Isa::Mips,
            1 => Isa::X86,
            _ => return Err(CodecError::corrupt(SELF, "unknown isa tag")),
        };
        let class = if bytes[2] == 0 { Class::Elf32 } else { Class::Elf64 };
        let endianness = if bytes[3] == 0 { Endianness::Little } else { Endianness::Big };
        let entry = u64::from_be_bytes(bytes[4..12].try_into().expect("8 bytes"));
        Ok(Self { algorithm, isa, class, endianness, entry })
    }
}

/// Which container version a byte prefix announces, if any.
pub fn container_version(bytes: &[u8]) -> Option<u8> {
    if bytes.len() < 4 {
        return None;
    }
    match &bytes[0..4] {
        m if m == CONTAINER_MAGIC => Some(1),
        m if m == CONTAINER_V2_MAGIC => Some(2),
        _ => None,
    }
}

/// A parsed v1 `.cce` container, borrowing the codec and image payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Container<'a> {
    /// The codec that produced the image (always random-access).
    pub algorithm: Algorithm,
    /// Instruction set of the compressed text.
    pub isa: Isa,
    /// ELF class of the original executable.
    pub class: Class,
    /// Endianness of the original executable.
    pub endianness: Endianness,
    /// ELF entry point of the original executable.
    pub entry: u64,
    /// Serialized codec model (feed to `CodecBuilder::codec_from_bytes`).
    pub codec_bytes: &'a [u8],
    /// Serialized block image (feed to `BlockImage::from_bytes`).
    pub image_bytes: &'a [u8],
}

impl<'a> Container<'a> {
    /// Parses a v1 `.cce` container.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Corrupt`] on a bad magic number, unknown or
    /// file-oriented codec tag, unknown ISA tag, or truncation; this
    /// function never panics on malformed input.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, CodecError> {
        if bytes.len() < 20 || &bytes[0..4] != CONTAINER_MAGIC {
            return Err(CodecError::corrupt(SELF, "not a cce container"));
        }
        let identity = ContainerIdentity::parse(bytes[4..16].try_into().expect("identity bytes"))?;
        let codec_len = u32::from_be_bytes(bytes[16..20].try_into().expect("4 bytes")) as usize;
        let rest = &bytes[20..];
        if rest.len() < codec_len {
            return Err(CodecError::corrupt(SELF, "container truncated"));
        }
        let (codec_bytes, image_bytes) = rest.split_at(codec_len);
        Ok(Self {
            algorithm: identity.algorithm,
            isa: identity.isa,
            class: identity.class,
            endianness: identity.endianness,
            entry: identity.entry,
            codec_bytes,
            image_bytes,
        })
    }

    /// The identity block shared with v2 containers.
    pub fn identity(&self) -> ContainerIdentity {
        ContainerIdentity {
            algorithm: self.algorithm,
            isa: self.isa,
            class: self.class,
            endianness: self.endianness,
            entry: self.entry,
        }
    }

    /// Serializes the container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.codec_bytes.len() + self.image_bytes.len());
        out.extend_from_slice(CONTAINER_MAGIC);
        self.identity().encode(&mut out);
        out.extend_from_slice(&(self.codec_bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(self.codec_bytes);
        out.extend_from_slice(self.image_bytes);
        out
    }
}

/// Bytes required by a line address table indexing `block_count` blocks
/// of `data_len` total compressed bytes — the same sizing rule as
/// [`BlockImage::lat_bytes`], shared so streamed and buffered artifacts
/// report identical overheads.
pub(crate) fn lat_bytes_for(block_count: usize, data_len: usize) -> usize {
    if block_count == 0 {
        return 0;
    }
    let entry_bits = usize::BITS - data_len.next_power_of_two().leading_zeros();
    (block_count * entry_bits as usize).div_ceil(8)
}

/// Size accounting for a finished v2 container, mirroring
/// [`BlockImage`]'s reporting so streamed and buffered measurements are
/// directly comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainerSummary {
    /// Number of blocks written.
    pub blocks: usize,
    /// Total compressed block payload bytes (model excluded).
    pub data_len: u64,
    /// Uncompressed text length covered by the blocks.
    pub original_len: u64,
    /// Codec model bytes charged to the image.
    pub model_bytes: usize,
    /// Total artifact size on disk, header through footer.
    pub total_len: u64,
}

impl ContainerSummary {
    /// Compressed size in the paper's accounting: blocks plus model.
    pub fn compressed_len(&self) -> usize {
        self.data_len as usize + self.model_bytes
    }

    /// Bytes required by a line address table indexing every block.
    pub fn lat_bytes(&self) -> usize {
        lat_bytes_for(self.blocks, self.data_len as usize)
    }

    /// Compression ratio (compressed including model / original).
    pub fn ratio(&self) -> f64 {
        self.compressed_len() as f64 / self.original_len as f64
    }

    /// Compression ratio charging the line address table as well.
    pub fn ratio_with_lat(&self) -> f64 {
        (self.compressed_len() + self.lat_bytes()) as f64 / self.original_len as f64
    }
}

/// Incremental v2 container writer: a [`BlockSink`] that appends each
/// compressed block to the output as the pipeline drains, then seals the
/// artifact with the offset index and footer on [`finish`].
///
/// The writer only ever moves forward — it works on any [`Write`], a
/// growing file or an in-memory counter alike — so peak memory is the
/// index (16 bytes per block), not the artifact.
///
/// [`finish`]: ContainerWriter::finish
#[derive(Debug)]
pub struct ContainerWriter<W: Write> {
    out: W,
    index: Vec<(u64, u32, u32)>,
    data_len: u64,
    original_len: u64,
    header_len: u64,
    model_bytes: usize,
}

impl<W: Write> ContainerWriter<W> {
    /// Writes the v2 header (identity, block size, model accounting,
    /// codec model) and returns a sink ready to accept blocks.
    ///
    /// # Errors
    ///
    /// [`CodecError::Unsupported`] for a file-oriented algorithm (those
    /// have no block stream to index) and [`CodecError::Corrupt`] when a
    /// field exceeds its wire width or the underlying writer fails.
    pub fn new(
        mut out: W,
        identity: ContainerIdentity,
        block_size: usize,
        model_bytes: usize,
        codec_bytes: &[u8],
    ) -> Result<Self, CodecError> {
        if !identity.algorithm.random_access() {
            return Err(CodecError::unsupported(
                SELF,
                "v2 containers hold random-access codecs only",
            ));
        }
        let block_size = u32::try_from(block_size)
            .ok()
            .filter(|&b| b > 0 && b as usize <= BlockImage::MAX_BLOCK_SIZE)
            .ok_or_else(|| CodecError::corrupt(SELF, "block size exceeds limit"))?;
        let model = u32::try_from(model_bytes)
            .map_err(|_| CodecError::corrupt(SELF, "model accounting exceeds u32"))?;
        let codec_len = u32::try_from(codec_bytes.len())
            .map_err(|_| CodecError::corrupt(SELF, "codec model exceeds u32"))?;
        let mut header = Vec::with_capacity(V2_HEADER_LEN + codec_bytes.len());
        header.extend_from_slice(CONTAINER_V2_MAGIC);
        identity.encode(&mut header);
        header.extend_from_slice(&block_size.to_be_bytes());
        header.extend_from_slice(&model.to_be_bytes());
        header.extend_from_slice(&codec_len.to_be_bytes());
        header.extend_from_slice(codec_bytes);
        out.write_all(&header).map_err(io_corrupt)?;
        Ok(Self {
            out,
            index: Vec::new(),
            data_len: 0,
            original_len: 0,
            header_len: header.len() as u64,
            model_bytes,
        })
    }

    /// Writes the offset index and footer, flushes, and returns the
    /// size accounting.
    ///
    /// # Errors
    ///
    /// [`CodecError::Corrupt`] when the underlying writer fails.
    pub fn finish(mut self) -> Result<ContainerSummary, CodecError> {
        let index_offset = self.header_len + self.data_len;
        let mut tail = Vec::with_capacity(self.index.len() * INDEX_ENTRY_LEN + V2_FOOTER_LEN);
        for &(offset, compressed, uncompressed) in &self.index {
            tail.extend_from_slice(&offset.to_be_bytes());
            tail.extend_from_slice(&compressed.to_be_bytes());
            tail.extend_from_slice(&uncompressed.to_be_bytes());
        }
        tail.extend_from_slice(&index_offset.to_be_bytes());
        tail.extend_from_slice(&(self.index.len() as u64).to_be_bytes());
        tail.extend_from_slice(&self.original_len.to_be_bytes());
        tail.extend_from_slice(INDEX_MAGIC);
        self.out.write_all(&tail).map_err(io_corrupt)?;
        self.out.flush().map_err(io_corrupt)?;
        Ok(ContainerSummary {
            blocks: self.index.len(),
            data_len: self.data_len,
            original_len: self.original_len,
            model_bytes: self.model_bytes,
            total_len: index_offset + tail.len() as u64,
        })
    }
}

impl<W: Write> BlockSink for ContainerWriter<W> {
    fn accept(&mut self, block: CompressedBlock) -> Result<(), CodecError> {
        if block.index != self.index.len() {
            return Err(CodecError::corrupt(SELF, "blocks arrived out of order"));
        }
        let compressed = u32::try_from(block.data.len())
            .map_err(|_| CodecError::corrupt(SELF, "compressed block exceeds u32"))?;
        let uncompressed = u32::try_from(block.uncompressed_len)
            .map_err(|_| CodecError::corrupt(SELF, "uncompressed block exceeds u32"))?;
        self.out.write_all(&block.data).map_err(io_corrupt)?;
        self.index.push((self.data_len, compressed, uncompressed));
        self.data_len += u64::from(compressed);
        self.original_len += u64::from(uncompressed);
        Ok(())
    }
}

/// Maps an I/O failure on the container stream to the workspace error
/// type (which deliberately has no I/O variant — see `CodecError` docs).
fn io_corrupt(e: std::io::Error) -> CodecError {
    CodecError::corrupt(SELF, format!("container io error: {e}"))
}

/// Random-access reader for v2 containers.
///
/// [`open`](Self::open) reads the header, the codec model, and the
/// index trailer — never the block data.  [`read_block`](Self::read_block)
/// then seeks directly to one block, so decoding block *i* touches
/// `O(1)` artifact bytes regardless of *i* (the property the v2 layout
/// exists for, and which `tests/streaming.rs` proves with a counting
/// reader).
#[derive(Debug)]
pub struct ContainerV2Reader<R: Read + Seek> {
    reader: R,
    identity: ContainerIdentity,
    block_size: usize,
    model_bytes: usize,
    codec_bytes: Vec<u8>,
    data_start: u64,
    index: Vec<(u64, u32, u32)>,
    original_len: u64,
}

impl<R: Read + Seek> ContainerV2Reader<R> {
    /// Opens a v2 container, validating the header, footer, and index.
    ///
    /// Enforces the same corruption caps as [`BlockImage::from_bytes`]:
    /// block size within [`BlockImage::MAX_BLOCK_SIZE`], per-block
    /// uncompressed lengths within block size +
    /// [`BlockImage::BLOCK_SLACK`], offsets dense and in-bounds, and
    /// per-block lengths summing to the claimed original length.
    ///
    /// # Errors
    ///
    /// [`CodecError::Corrupt`] on any structural violation or I/O
    /// failure; this function never panics on malformed input.
    pub fn open(mut reader: R) -> Result<Self, CodecError> {
        let stream_len = reader.seek(SeekFrom::End(0)).map_err(io_corrupt)?;
        if stream_len < (V2_HEADER_LEN + V2_FOOTER_LEN) as u64 {
            return Err(CodecError::corrupt(SELF, "not a cce v2 container"));
        }

        let mut header = [0u8; V2_HEADER_LEN];
        reader.seek(SeekFrom::Start(0)).map_err(io_corrupt)?;
        reader.read_exact(&mut header).map_err(io_corrupt)?;
        if &header[0..4] != CONTAINER_V2_MAGIC {
            return Err(CodecError::corrupt(SELF, "not a cce v2 container"));
        }
        let identity = ContainerIdentity::parse(header[4..16].try_into().expect("identity"))?;
        let block_size = u32::from_be_bytes(header[16..20].try_into().expect("4 bytes")) as usize;
        if block_size == 0 || block_size > BlockImage::MAX_BLOCK_SIZE {
            return Err(CodecError::corrupt(SELF, "block size exceeds limit"));
        }
        let model_bytes = u32::from_be_bytes(header[20..24].try_into().expect("4 bytes")) as usize;
        let codec_len = u32::from_be_bytes(header[24..28].try_into().expect("4 bytes")) as u64;

        let data_start = V2_HEADER_LEN as u64 + codec_len;
        let footer_start = stream_len - V2_FOOTER_LEN as u64;
        if data_start > footer_start {
            return Err(CodecError::corrupt(SELF, "container truncated"));
        }

        let mut footer = [0u8; V2_FOOTER_LEN];
        reader.seek(SeekFrom::Start(footer_start)).map_err(io_corrupt)?;
        reader.read_exact(&mut footer).map_err(io_corrupt)?;
        if &footer[24..28] != INDEX_MAGIC {
            return Err(CodecError::corrupt(SELF, "bad index magic"));
        }
        let index_offset = u64::from_be_bytes(footer[0..8].try_into().expect("8 bytes"));
        let block_count = u64::from_be_bytes(footer[8..16].try_into().expect("8 bytes"));
        let original_len = u64::from_be_bytes(footer[16..24].try_into().expect("8 bytes"));
        if index_offset < data_start || index_offset > footer_start {
            return Err(CodecError::corrupt(SELF, "index offset out of bounds"));
        }
        let index_len = footer_start - index_offset;
        // The index extent must hold exactly the claimed entries — the
        // writer emits a canonical layout with no slack, and checking it
        // bounds the allocation below by the actual artifact size.
        if block_count.checked_mul(INDEX_ENTRY_LEN as u64) != Some(index_len) {
            return Err(CodecError::corrupt(SELF, "block count disagrees with index size"));
        }
        let block_count = block_count as usize;
        let data_len = index_offset - data_start;

        let mut codec_bytes = vec![0u8; codec_len as usize];
        reader.seek(SeekFrom::Start(V2_HEADER_LEN as u64)).map_err(io_corrupt)?;
        reader.read_exact(&mut codec_bytes).map_err(io_corrupt)?;

        let mut index_bytes = vec![0u8; index_len as usize];
        reader.seek(SeekFrom::Start(index_offset)).map_err(io_corrupt)?;
        reader.read_exact(&mut index_bytes).map_err(io_corrupt)?;

        let mut index = Vec::with_capacity(block_count);
        let mut expected_offset = 0u64;
        let mut uncompressed_total = 0u64;
        for entry in index_bytes.chunks_exact(INDEX_ENTRY_LEN) {
            let offset = u64::from_be_bytes(entry[0..8].try_into().expect("8 bytes"));
            let compressed = u32::from_be_bytes(entry[8..12].try_into().expect("4 bytes"));
            let uncompressed = u32::from_be_bytes(entry[12..16].try_into().expect("4 bytes"));
            // Blocks are written back to back; anything else is tampering.
            if offset != expected_offset {
                return Err(CodecError::corrupt(SELF, "index offsets are not dense"));
            }
            if uncompressed as usize > block_size + BlockImage::BLOCK_SLACK {
                return Err(CodecError::corrupt(
                    SELF,
                    "block uncompressed length exceeds block size",
                ));
            }
            expected_offset = expected_offset
                .checked_add(u64::from(compressed))
                .ok_or_else(|| CodecError::corrupt(SELF, "compressed total overflows"))?;
            uncompressed_total += u64::from(uncompressed);
            index.push((offset, compressed, uncompressed));
        }
        if expected_offset != data_len {
            return Err(CodecError::corrupt(SELF, "block data disagrees with index size"));
        }
        if uncompressed_total != original_len {
            return Err(CodecError::corrupt(
                SELF,
                "block lengths do not sum to the original length",
            ));
        }

        Ok(Self {
            reader,
            identity,
            block_size,
            model_bytes,
            codec_bytes,
            data_start,
            index,
            original_len,
        })
    }

    /// The identity block shared with v1 containers.
    pub fn identity(&self) -> ContainerIdentity {
        self.identity
    }

    /// The codec's nominal uncompressed block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Serialized codec model (feed to `CodecBuilder::codec_from_bytes`).
    pub fn codec_bytes(&self) -> &[u8] {
        &self.codec_bytes
    }

    /// Number of blocks in the container.
    pub fn block_count(&self) -> usize {
        self.index.len()
    }

    /// Uncompressed byte length restored by block `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn block_uncompressed_len(&self, index: usize) -> usize {
        self.index[index].2 as usize
    }

    /// Length of the original uncompressed text in bytes.
    pub fn original_len(&self) -> u64 {
        self.original_len
    }

    /// Size accounting identical to what the writer reported.
    pub fn summary(&self) -> ContainerSummary {
        let data_len: u64 = self.index.iter().map(|&(_, c, _)| u64::from(c)).sum();
        ContainerSummary {
            blocks: self.index.len(),
            data_len,
            original_len: self.original_len,
            model_bytes: self.model_bytes,
            total_len: self.data_start
                + data_len
                + (self.index.len() * INDEX_ENTRY_LEN + V2_FOOTER_LEN) as u64,
        }
    }

    /// Reads the compressed bytes of block `index` with a single seek —
    /// no other block is touched.
    ///
    /// Returns the compressed bytes and the uncompressed length the
    /// block restores (the second argument to
    /// [`BlockCodec::decompress_block`]).
    ///
    /// # Errors
    ///
    /// [`CodecError::Corrupt`] when `index` is out of range or the read
    /// fails.
    pub fn read_block(&mut self, index: usize) -> Result<(Vec<u8>, usize), CodecError> {
        let &(offset, compressed, uncompressed) = self
            .index
            .get(index)
            .ok_or_else(|| CodecError::corrupt(SELF, format!("block {index} out of range")))?;
        let mut data = vec![0u8; compressed as usize];
        self.reader.seek(SeekFrom::Start(self.data_start + offset)).map_err(io_corrupt)?;
        self.reader.read_exact(&mut data).map_err(io_corrupt)?;
        Ok((data, uncompressed as usize))
    }

    /// Decodes every block in order and returns the reassembled text.
    ///
    /// # Errors
    ///
    /// Propagates read failures and per-block decode errors from
    /// `codec`; fails with [`CodecError::Corrupt`] if a block decodes to
    /// a length other than the one the index claims.
    pub fn decode_text(&mut self, codec: &dyn BlockCodec) -> Result<Vec<u8>, CodecError> {
        let mut text = Vec::with_capacity(self.original_len as usize);
        for index in 0..self.block_count() {
            let (data, out_len) = self.read_block(index)?;
            let block = codec.decompress_block(&data, out_len)?;
            if block.len() != out_len {
                return Err(CodecError::corrupt(
                    SELF,
                    format!(
                        "block {index} decoded to {} bytes, index claims {out_len}",
                        block.len()
                    ),
                ));
            }
            text.extend_from_slice(&block);
        }
        Ok(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> Vec<u8> {
        Container {
            algorithm: Algorithm::Samc,
            isa: Isa::Mips,
            class: Class::Elf32,
            endianness: Endianness::Big,
            entry: 0x40_0000,
            codec_bytes: &[1, 2, 3],
            image_bytes: &[4, 5],
        }
        .to_bytes()
    }

    fn sample_identity() -> ContainerIdentity {
        ContainerIdentity {
            algorithm: Algorithm::Samc,
            isa: Isa::Mips,
            class: Class::Elf32,
            endianness: Endianness::Big,
            entry: 0x40_0000,
        }
    }

    /// Builds a small v2 container with the given blocks.
    fn sample_v2(blocks: &[(&[u8], usize)]) -> Vec<u8> {
        let mut out = Vec::new();
        let mut writer =
            ContainerWriter::new(&mut out, sample_identity(), 32, 7, &[9, 8, 7]).unwrap();
        for (index, &(data, uncompressed)) in blocks.iter().enumerate() {
            writer
                .accept(CompressedBlock {
                    index,
                    uncompressed_len: uncompressed,
                    data: data.to_vec(),
                })
                .unwrap();
        }
        writer.finish().unwrap();
        out
    }

    #[test]
    fn round_trips() {
        let bytes = sample();
        let parsed = Container::parse(&bytes).unwrap();
        assert_eq!(parsed.algorithm, Algorithm::Samc);
        assert_eq!(parsed.isa, Isa::Mips);
        assert_eq!(parsed.entry, 0x40_0000);
        assert_eq!(parsed.codec_bytes, &[1, 2, 3]);
        assert_eq!(parsed.image_bytes, &[4, 5]);
        assert_eq!(parsed.to_bytes(), bytes);
    }

    #[test]
    fn malformed_containers_are_typed_errors() {
        let bytes = sample();
        // Too short / bad magic.
        assert!(Container::parse(&[]).is_err());
        assert!(Container::parse(b"CCEFxxxx").is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(Container::parse(&bad), Err(CodecError::Corrupt { .. })));
        // Unknown codec tag.
        let mut bad = bytes.clone();
        bad[4] = 0xEE;
        assert!(Container::parse(&bad).is_err());
        // Unknown ISA tag.
        let mut bad = bytes.clone();
        bad[5] = 9;
        assert!(Container::parse(&bad).is_err());
        // Codec length past EOF.
        let mut bad = bytes.clone();
        bad[16..20].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(Container::parse(&bad), Err(CodecError::Corrupt { .. })));
    }

    #[test]
    fn version_sniffing() {
        assert_eq!(container_version(&sample()), Some(1));
        assert_eq!(container_version(&sample_v2(&[])), Some(2));
        assert_eq!(container_version(b"CIMG"), None);
        assert_eq!(container_version(b"CC"), None);
    }

    #[test]
    fn v2_round_trips() {
        let bytes = sample_v2(&[(&[10, 11, 12], 32), (&[13], 32), (&[], 16)]);
        let mut reader = ContainerV2Reader::open(Cursor::new(&bytes)).unwrap();
        assert_eq!(reader.identity(), sample_identity());
        assert_eq!(reader.block_size(), 32);
        assert_eq!(reader.codec_bytes(), &[9, 8, 7]);
        assert_eq!(reader.block_count(), 3);
        assert_eq!(reader.original_len(), 80);
        assert_eq!(reader.block_uncompressed_len(2), 16);
        assert_eq!(reader.read_block(1).unwrap(), (vec![13], 32));
        assert_eq!(reader.read_block(0).unwrap(), (vec![10, 11, 12], 32));
        assert_eq!(reader.read_block(2).unwrap(), (Vec::new(), 16));
        assert!(reader.read_block(3).is_err());
        let summary = reader.summary();
        assert_eq!(summary.blocks, 3);
        assert_eq!(summary.data_len, 4);
        assert_eq!(summary.original_len, 80);
        assert_eq!(summary.model_bytes, 7);
        assert_eq!(summary.total_len, bytes.len() as u64);
    }

    #[test]
    fn v2_accounting_matches_block_image() {
        // The streamed artifact must charge exactly what the buffered
        // image charges, or the two measurement paths drift apart.
        let blocks = vec![vec![1u8, 2, 3], vec![4], vec![]];
        let image = BlockImage::new(blocks.clone(), vec![32, 32, 16], 32, 80, 7);
        let bytes = sample_v2(&[(&blocks[0], 32), (&blocks[1], 32), (&blocks[2], 16)]);
        let reader = ContainerV2Reader::open(Cursor::new(&bytes)).unwrap();
        let summary = reader.summary();
        assert_eq!(summary.compressed_len(), image.compressed_len());
        assert_eq!(summary.lat_bytes(), image.lat_bytes());
        assert_eq!(summary.ratio(), image.ratio());
        assert_eq!(summary.ratio_with_lat(), image.ratio_with_lat());
    }

    #[test]
    fn v2_writer_rejects_out_of_order_and_file_codecs() {
        let mut out = Vec::new();
        let mut writer = ContainerWriter::new(&mut out, sample_identity(), 32, 0, &[]).unwrap();
        let err = writer
            .accept(CompressedBlock { index: 5, uncompressed_len: 32, data: vec![1] })
            .unwrap_err();
        assert!(matches!(err, CodecError::Corrupt { .. }));

        let mut identity = sample_identity();
        identity.algorithm = Algorithm::Gzip;
        let err = ContainerWriter::new(Vec::new(), identity, 32, 0, &[]).unwrap_err();
        assert!(matches!(err, CodecError::Unsupported { .. }));
    }

    #[test]
    fn v2_corruption_is_detected_not_panicked() {
        let bytes = sample_v2(&[(&[10, 11, 12], 32), (&[13], 20)]);
        // Truncation at every prefix must fail cleanly.
        for len in 0..bytes.len() {
            assert!(
                ContainerV2Reader::open(Cursor::new(&bytes[..len])).is_err(),
                "prefix of {len} bytes parsed"
            );
        }
        let len = bytes.len();
        // Bad magics, front and back.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(ContainerV2Reader::open(Cursor::new(&bad)).is_err());
        let mut bad = bytes.clone();
        bad[len - 1] = b'?'; // last footer byte is the 'X' of "CIDX"
        assert!(ContainerV2Reader::open(Cursor::new(&bad)).is_err());
        // Tampered block count.
        let mut bad = bytes.clone();
        bad[len - 20..len - 12].copy_from_slice(&u64::MAX.to_be_bytes());
        assert!(ContainerV2Reader::open(Cursor::new(&bad)).is_err());
        // Tampered index offset.
        let mut bad = bytes.clone();
        bad[len - 28..len - 20].copy_from_slice(&0u64.to_be_bytes());
        assert!(ContainerV2Reader::open(Cursor::new(&bad)).is_err());
        // Non-dense block offset (second entry starts at index start).
        let index_start = len - 28 - 2 * INDEX_ENTRY_LEN;
        let mut bad = bytes.clone();
        bad[index_start + INDEX_ENTRY_LEN..index_start + INDEX_ENTRY_LEN + 8]
            .copy_from_slice(&7u64.to_be_bytes());
        assert!(ContainerV2Reader::open(Cursor::new(&bad)).is_err());
        // Amplified per-block uncompressed length.
        let mut bad = bytes.clone();
        bad[index_start + 12..index_start + 16].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(ContainerV2Reader::open(Cursor::new(&bad)).is_err());
        // Oversized block size in the header.
        let mut bad = bytes.clone();
        bad[16..20].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(ContainerV2Reader::open(Cursor::new(&bad)).is_err());
        // The pristine artifact still parses after all that.
        assert!(ContainerV2Reader::open(Cursor::new(&bytes)).is_ok());
    }

    #[test]
    fn v2_empty_container_round_trips() {
        let bytes = sample_v2(&[]);
        let mut reader = ContainerV2Reader::open(Cursor::new(&bytes)).unwrap();
        assert_eq!(reader.block_count(), 0);
        assert_eq!(reader.original_len(), 0);
        assert_eq!(reader.summary().lat_bytes(), 0);
        assert!(reader.read_block(0).is_err());
    }
}
