//! The `.cce` container format shared by the CLI and the fuzz harness.
//!
//! A `.cce` artifact packages everything the decompressor needs: the
//! trained codec model, the block image, and enough ELF identity (ISA,
//! class, endianness, entry point) to rebuild a loadable executable
//! around the decompressed text section.  Layout (all integers
//! big-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic "CCEF"
//!      4     1  codec kind (= Algorithm::tag, random-access only)
//!      5     1  ISA (0 = MIPS, 1 = x86)
//!      6     1  ELF class (0 = ELF32, 1 = ELF64)
//!      7     1  endianness (0 = little, 1 = big)
//!      8     8  ELF entry point
//!     16     4  codec model length N
//!     20     N  serialized codec model
//!   20+N     —  serialized BlockImage
//! ```

use crate::registry::Algorithm;
use cce_codec::CodecError;
use cce_elf::{Class, Endianness};
use cce_isa::Isa;

/// Magic number opening a `.cce` container.
pub const CONTAINER_MAGIC: &[u8; 4] = b"CCEF";

/// Name used in [`CodecError::Corrupt`] raised by container parsing.
const SELF: &str = "container";

/// A parsed `.cce` container, borrowing the codec and image payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Container<'a> {
    /// The codec that produced the image (always random-access).
    pub algorithm: Algorithm,
    /// Instruction set of the compressed text.
    pub isa: Isa,
    /// ELF class of the original executable.
    pub class: Class,
    /// Endianness of the original executable.
    pub endianness: Endianness,
    /// ELF entry point of the original executable.
    pub entry: u64,
    /// Serialized codec model (feed to `CodecBuilder::codec_from_bytes`).
    pub codec_bytes: &'a [u8],
    /// Serialized block image (feed to `BlockImage::from_bytes`).
    pub image_bytes: &'a [u8],
}

impl<'a> Container<'a> {
    /// Parses a `.cce` container.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Corrupt`] on a bad magic number, unknown or
    /// file-oriented codec tag, unknown ISA tag, or truncation; this
    /// function never panics on malformed input.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, CodecError> {
        if bytes.len() < 20 || &bytes[0..4] != CONTAINER_MAGIC {
            return Err(CodecError::corrupt(SELF, "not a cce container"));
        }
        let algorithm = Algorithm::from_tag(bytes[4])
            .ok_or_else(|| CodecError::corrupt(SELF, "unknown codec tag"))?;
        if !algorithm.random_access() {
            return Err(CodecError::corrupt(SELF, "container holds a file-oriented codec tag"));
        }
        let isa = match bytes[5] {
            0 => Isa::Mips,
            1 => Isa::X86,
            _ => return Err(CodecError::corrupt(SELF, "unknown isa tag")),
        };
        let class = if bytes[6] == 0 { Class::Elf32 } else { Class::Elf64 };
        let endianness = if bytes[7] == 0 { Endianness::Little } else { Endianness::Big };
        let entry = u64::from_be_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let codec_len = u32::from_be_bytes(bytes[16..20].try_into().expect("4 bytes")) as usize;
        let rest = &bytes[20..];
        if rest.len() < codec_len {
            return Err(CodecError::corrupt(SELF, "container truncated"));
        }
        let (codec_bytes, image_bytes) = rest.split_at(codec_len);
        Ok(Self { algorithm, isa, class, endianness, entry, codec_bytes, image_bytes })
    }

    /// Serializes the container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.codec_bytes.len() + self.image_bytes.len());
        out.extend_from_slice(CONTAINER_MAGIC);
        out.push(self.algorithm.tag());
        out.push(match self.isa {
            Isa::Mips => 0,
            Isa::X86 => 1,
        });
        out.push(match self.class {
            Class::Elf32 => 0,
            Class::Elf64 => 1,
        });
        out.push(match self.endianness {
            Endianness::Little => 0,
            Endianness::Big => 1,
        });
        out.extend_from_slice(&self.entry.to_be_bytes());
        out.extend_from_slice(&(self.codec_bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(self.codec_bytes);
        out.extend_from_slice(self.image_bytes);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        Container {
            algorithm: Algorithm::Samc,
            isa: Isa::Mips,
            class: Class::Elf32,
            endianness: Endianness::Big,
            entry: 0x40_0000,
            codec_bytes: &[1, 2, 3],
            image_bytes: &[4, 5],
        }
        .to_bytes()
    }

    #[test]
    fn round_trips() {
        let bytes = sample();
        let parsed = Container::parse(&bytes).unwrap();
        assert_eq!(parsed.algorithm, Algorithm::Samc);
        assert_eq!(parsed.isa, Isa::Mips);
        assert_eq!(parsed.entry, 0x40_0000);
        assert_eq!(parsed.codec_bytes, &[1, 2, 3]);
        assert_eq!(parsed.image_bytes, &[4, 5]);
        assert_eq!(parsed.to_bytes(), bytes);
    }

    #[test]
    fn malformed_containers_are_typed_errors() {
        let bytes = sample();
        // Too short / bad magic.
        assert!(Container::parse(&[]).is_err());
        assert!(Container::parse(b"CCEFxxxx").is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(Container::parse(&bad), Err(CodecError::Corrupt { .. })));
        // Unknown codec tag.
        let mut bad = bytes.clone();
        bad[4] = 0xEE;
        assert!(Container::parse(&bad).is_err());
        // Unknown ISA tag.
        let mut bad = bytes.clone();
        bad[5] = 9;
        assert!(Container::parse(&bad).is_err());
        // Codec length past EOF.
        let mut bad = bytes.clone();
        bad[16..20].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(Container::parse(&bad), Err(CodecError::Corrupt { .. })));
    }
}
