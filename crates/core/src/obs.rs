//! Workspace-wide metric aggregation.
//!
//! Every instrumented crate exposes an ordered `obs::descriptors()`
//! list; this module chains them into the single registry the CLI and
//! the figure harness export from.  The chain order is fixed (codecs in
//! paper order, then infrastructure), so snapshots and the `--metrics`
//! artifact are deterministic and diff cleanly.
//!
//! The naming scheme, the overhead policy, and the full list of
//! registered names live in DESIGN.md §7 — CI checks that every name
//! returned by [`descriptors`] is documented there.

pub use cce_obs::{
    Desc, HitMiss, JsonSink, Kind, MetricsSink, Sample, SampleValue, Snapshot, TableSink,
};

/// Version stamp of the `--metrics` artifact schema.
pub const METRICS_FORMAT_VERSION: u32 = 1;

/// Every metric descriptor registered across the workspace, in a stable
/// order: arith, samc, sadc, huffman, lz, codec, memsim, the streaming
/// pipeline, the serving tier, the rANS backend, then the memsim sweep
/// driver (each new family is appended last so
/// the artifact order of every earlier metric is unchanged — the
/// registry is append-only).
pub fn descriptors() -> Vec<Desc> {
    let mut all = Vec::new();
    all.extend(cce_arith::obs::descriptors());
    all.extend(cce_samc::obs::descriptors());
    all.extend(cce_sadc::obs::descriptors());
    all.extend(cce_huffman::obs::descriptors());
    all.extend(cce_lz::obs::descriptors());
    all.extend(cce_codec::obs::descriptors());
    all.extend(cce_memsim::obs::descriptors());
    all.extend(cce_codec::obs::pipeline_descriptors());
    all.extend(cce_serve::obs::descriptors());
    all.extend(cce_rans::obs::descriptors());
    all.extend(cce_memsim::obs::sweep_descriptors());
    all
}

/// Whether instrumentation is compiled in (the `obs` feature).
///
/// When `false`, every metric handle is a zero-sized no-op and all
/// snapshot values read zero.
pub const fn enabled() -> bool {
    cce_obs::enabled()
}

/// Captures the current value of every workspace metric.
pub fn snapshot() -> Snapshot {
    Snapshot::collect(&descriptors())
}

/// Resets every workspace metric to zero (test isolation; no-op with
/// observability compiled out).
pub fn reset() {
    for desc in descriptors() {
        desc.reset();
    }
}

/// Renders the `--metrics` artifact for a CLI `command`:
///
/// ```json
/// {"version":1,"command":"bench","obs_enabled":true,"metrics":[...]}
/// ```
///
/// The `metrics` array is [`JsonSink`] output — one object per
/// registered metric, in [`descriptors`] order.
pub fn metrics_json(command: &str) -> String {
    let body = JsonSink.render(&snapshot());
    // JsonSink renders `{"metrics":[...]}`; splice our header into it.
    format!(
        "{{\"version\":{METRICS_FORMAT_VERSION},\"command\":{},\"obs_enabled\":{},{}",
        crate::report::json_string(command),
        enabled(),
        &body[1..],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_are_unique_and_dotted() {
        let descs = descriptors();
        assert!(descs.len() >= 30, "expected the full workspace registry, got {}", descs.len());
        let mut seen = HashSet::new();
        for d in &descs {
            assert!(seen.insert(d.name), "duplicate metric name {}", d.name);
            assert!(
                d.name.contains('.')
                    && d.name.chars().all(|c| c.is_ascii_lowercase() || c == '.' || c == '_'),
                "name {} violates the crate.component.event scheme",
                d.name
            );
            assert!(!d.help.is_empty(), "{} has no help text", d.name);
        }
    }

    #[test]
    fn snapshot_covers_every_descriptor() {
        let descs = descriptors();
        let snap = snapshot();
        assert_eq!(snap.samples.len(), descs.len());
        for (d, s) in descs.iter().zip(&snap.samples) {
            assert_eq!(d.name, s.name);
        }
    }

    #[test]
    fn metrics_json_has_header_and_every_name() {
        let json = metrics_json("unit-test");
        assert!(json.starts_with(&format!("{{\"version\":{METRICS_FORMAT_VERSION},")));
        assert!(json.contains("\"command\":\"unit-test\""));
        assert!(json.contains(&format!("\"obs_enabled\":{}", enabled())));
        assert!(json.ends_with("]}"));
        for d in descriptors() {
            assert!(json.contains(d.name), "artifact is missing {}", d.name);
        }
    }

    #[test]
    fn measurement_populates_codec_metrics() {
        // A measurement exercises training, block compression, and the
        // verify-decompress path, so codec metrics must move (when
        // instrumentation is compiled in).
        use cce_isa::mips::encode_text;
        use cce_workload::{generate_mips, Spec95};
        let text = encode_text(&generate_mips(Spec95::by_name("ijpeg").unwrap(), 0.05));
        let before = snapshot();
        crate::measure(crate::Algorithm::Samc, cce_isa::Isa::Mips, &text, 32).unwrap();
        let after = snapshot();
        if enabled() {
            assert_ne!(before, after, "obs is on but a SAMC measurement moved no metric");
            let units =
                after.samples.iter().find(|s| s.name == "samc.compress.units").expect("registered");
            assert!(!units.value.is_zero(), "samc.compress.units still zero");
        } else {
            assert!(after.is_all_zero());
        }
    }
}
