//! Registry-driven fuzz targets: every decode surface of every codec.
//!
//! The `cce-fuzz` crate supplies the seeded mutation engine and driver;
//! this module knows the *targets* — for each registered [`Algorithm`]
//! it trains a golden codec on a representative workload and exposes
//! every input-facing decode path as a [`FuzzTarget`]:
//!
//! * **codec model bytes** — `CodecBuilder::codec_from_bytes` on mutated
//!   serialized models, then a decode of the pristine image with whatever
//!   deserialized (a tampered-codebook probe);
//! * **block image bytes** — `BlockImage::from_bytes` on mutated images,
//!   then a full decode cross-checked *differentially* against per-block
//!   random access;
//! * **`.cce` container bytes** — [`Container::parse`] plus both payload
//!   parsers and a decode; the streamed v2 layout gets its own target
//!   ([`ContainerV2Reader::open`] and a block-by-block decode), putting
//!   the offset index and footer in the mutation surface;
//! * **program text** — the *differential* compress path: serial
//!   [`BlockCodec::compress`] vs [`compress_parallel`] must agree
//!   byte-for-byte (or fail identically), and whatever compresses must
//!   round-trip;
//! * **file streams** — the `compress(1)`/`gzip` decoders on mutated
//!   streams, with the LZW output budget engaged;
//! * **model-store records** — SAMC's cached-model record parser
//!   ([`cce_samc::store::ModelRecord`]) on mutated records, with a
//!   canonical re-serialization check on anything it accepts;
//! * **serving tier** ([`serve_targets`]) — the artifact manifest
//!   parser ([`cce_serve::Manifest::parse`]) on mutated JSON documents
//!   (hash/length/field corruption), and the daemon's wire-frame
//!   reader + request parser on mutated request streams (bad magic,
//!   oversized declared lengths, truncation, unknown opcodes).  Both
//!   must reject with typed errors — a panic or a non-canonical
//!   accept is a violation, exactly as for the codec surfaces.
//!
//! Per-case cost is bounded without trusting the decoders: any mutated
//! image claiming more than [`case budget`](#output-budget) output is
//! rejected by the harness itself, so a hang or allocation blowup in a
//! decoder shows up as a slow/failing case instead of a stuck process.
//!
//! # Output budget
//!
//! Targets reject mutated inputs whose *claimed* decompressed size
//! exceeds `16 × golden + 64 KiB`. Format-level caps (block size ≤ 1 MiB,
//! per-block length ≤ block size + slack) bound each field, but a
//! thousand maximal blocks still add up; the budget keeps every fuzz
//! case O(golden size).

use crate::container::{Container, ContainerIdentity, ContainerV2Reader, ContainerWriter};
use crate::registry::{Algorithm, CodecBuilder};
use cce_codec::pipeline::{BlockSink, CompressedBlock};
use cce_codec::{compress_parallel, BlockCodec, BlockImage, CodecError};
use cce_fuzz::{fuzz_target, Artifact};
pub use cce_fuzz::{Failure, FailureKind, FuzzConfig, FuzzReport, FuzzTarget, Outcome};
use cce_isa::Isa;
use cce_lz::{Gzip, Lzw};
use cce_workload::{generate_mips, generate_x86, Spec95};

/// Extra headroom above `16 × golden` in the per-case output budget.
const BUDGET_SLACK: usize = 64 * 1024;

/// Workers used on the parallel side of the differential compress check.
/// Deliberately not 1 (that would be the serial path again) and fixed so
/// reports stay machine-independent.
const DIFFERENTIAL_WORKERS: usize = 3;

/// The golden MIPS program text targets are trained on.
fn mips_text() -> Vec<u8> {
    let profile = Spec95::by_name("ijpeg").expect("known benchmark");
    let mut text = cce_isa::mips::encode_text(&generate_mips(profile, 0.02));
    text.truncate(8192); // keep per-case work small; stays 4-byte aligned
    text
}

/// The golden x86 program text (instruction-aligned, so untruncated).
fn x86_text() -> Vec<u8> {
    let profile = Spec95::by_name("ijpeg").expect("known benchmark");
    generate_x86(profile, 0.01)
}

/// Per-case output budget derived from the golden artifact size.
fn budget_for(golden_len: usize) -> usize {
    golden_len.saturating_mul(16) + BUDGET_SLACK
}

/// The synthesized rejection for inputs whose claimed output exceeds the
/// case budget (counted as `Rejected`, like any typed refusal).
fn over_budget() -> CodecError {
    CodecError::corrupt("fuzz harness", "claimed output exceeds case budget")
}

/// Section boundaries of a serialized [`BlockImage`]: fixed header
/// fields, the per-block length table, and the block data.
fn image_boundaries(block_count: usize) -> Vec<usize> {
    vec![4, 6, 10, 14, 18, 22, 22 + 8 * block_count]
}

// ---------------------------------------------------------------------
// Block-codec targets
// ---------------------------------------------------------------------

/// Mutates the serialized codec model; a parse that succeeds must also
/// survive decoding the pristine image.
struct CodecBytesTarget {
    label: String,
    builder: CodecBuilder,
    codec_bytes: Vec<u8>,
    golden_image: BlockImage,
}

impl FuzzTarget for CodecBytesTarget {
    fn name(&self) -> String {
        format!("{}/codec", self.label)
    }

    fn artifact(&self) -> Artifact {
        let len = self.codec_bytes.len();
        Artifact::with_boundaries(
            "codec model",
            self.codec_bytes.clone(),
            vec![4, 6, 10, 11, len / 2],
        )
    }

    fn run(&self, bytes: &[u8]) -> Outcome {
        let handle = match self.builder.codec_from_bytes(bytes) {
            Ok(handle) => handle,
            Err(e) => return Outcome::Rejected(e),
        };
        let codec = match handle.as_block() {
            Some(codec) => codec,
            None => return Outcome::Violation("registry built a non-block codec".into()),
        };
        // A mutated model that parses is a *valid* model — decoding the
        // golden image may yield different bytes (or a typed error), but
        // never a panic or hang.
        match codec.decompress(&self.golden_image) {
            Ok(_) => Outcome::Decoded,
            Err(e) => Outcome::Rejected(e),
        }
    }
}

/// Mutates the serialized block image; a parse that succeeds must decode
/// consistently under full decode vs per-block random access.
struct ImageBytesTarget {
    label: String,
    codec: Box<dyn BlockCodec>,
    image_bytes: Vec<u8>,
    block_count: usize,
    budget: usize,
}

impl FuzzTarget for ImageBytesTarget {
    fn name(&self) -> String {
        format!("{}/image", self.label)
    }

    fn artifact(&self) -> Artifact {
        Artifact::with_boundaries(
            "block image",
            self.image_bytes.clone(),
            image_boundaries(self.block_count),
        )
    }

    fn run(&self, bytes: &[u8]) -> Outcome {
        let image = match BlockImage::from_bytes(bytes) {
            Ok(image) => image,
            Err(e) => return Outcome::Rejected(e),
        };
        if image.original_len() > self.budget {
            return Outcome::Rejected(over_budget());
        }
        let full = match self.codec.decompress(&image) {
            Ok(full) => full,
            Err(e) => return Outcome::Rejected(e),
        };
        // Differential: random access must reconstruct exactly what the
        // full decode produced, block for block.
        let mut assembled = Vec::with_capacity(full.len());
        for index in 0..image.block_count() {
            let out_len = image.block_uncompressed_len(index);
            match self.codec.decompress_block(image.block(index), out_len) {
                Ok(block) => assembled.extend_from_slice(&block),
                Err(e) => {
                    return Outcome::Violation(format!(
                        "full decode succeeded but block {index} failed: {e}"
                    ))
                }
            }
        }
        if assembled != full {
            return Outcome::Violation("random access and full decode disagree".into());
        }
        Outcome::Decoded
    }
}

/// Mutates a whole `.cce` container: parse, both payload parsers, decode.
struct ContainerTarget {
    label: String,
    builder: CodecBuilder,
    container_bytes: Vec<u8>,
    codec_len: usize,
    budget: usize,
}

impl FuzzTarget for ContainerTarget {
    fn name(&self) -> String {
        format!("{}/container", self.label)
    }

    fn artifact(&self) -> Artifact {
        Artifact::with_boundaries(
            "container",
            self.container_bytes.clone(),
            vec![4, 5, 6, 7, 8, 16, 20, 20 + self.codec_len],
        )
    }

    fn run(&self, bytes: &[u8]) -> Outcome {
        let container = match Container::parse(bytes) {
            Ok(container) => container,
            Err(e) => return Outcome::Rejected(e),
        };
        let image = match BlockImage::from_bytes(container.image_bytes) {
            Ok(image) => image,
            Err(e) => return Outcome::Rejected(e),
        };
        if image.original_len() > self.budget {
            return Outcome::Rejected(over_budget());
        }
        // The mutated tag byte may redirect to another algorithm; parse
        // the codec with the *container's* claimed algorithm, like the
        // CLI does.
        let builder = container.algorithm.build(container.isa, self.builder.block_size());
        let handle = match builder.codec_from_bytes(container.codec_bytes) {
            Ok(handle) => handle,
            Err(e) => return Outcome::Rejected(e),
        };
        let codec = match handle.as_block() {
            Some(codec) => codec,
            None => return Outcome::Violation("container accepted a non-block codec".into()),
        };
        match codec.decompress(&image) {
            Ok(_) => Outcome::Decoded,
            Err(e) => Outcome::Rejected(e),
        }
    }
}

/// Mutates a whole v2 (streamed, indexed) `.cce` container: header,
/// codec model, index trailer, and footer all sit in the mutation
/// surface, and whatever [`ContainerV2Reader::open`] accepts must decode
/// block by block without panic or blowup.
struct ContainerV2Target {
    label: String,
    container_bytes: Vec<u8>,
    codec_len: usize,
    budget: usize,
}

impl FuzzTarget for ContainerV2Target {
    fn name(&self) -> String {
        format!("{}/container-v2", self.label)
    }

    fn artifact(&self) -> Artifact {
        // Header fields, codec model, block data, index trailer, footer.
        let len = self.container_bytes.len();
        Artifact::with_boundaries(
            "container v2",
            self.container_bytes.clone(),
            vec![4, 16, 20, 24, 28, 28 + self.codec_len, len - 28, len - 4],
        )
    }

    fn run(&self, bytes: &[u8]) -> Outcome {
        let mut reader = match ContainerV2Reader::open(std::io::Cursor::new(bytes)) {
            Ok(reader) => reader,
            Err(e) => return Outcome::Rejected(e),
        };
        if reader.original_len() > self.budget as u64 {
            return Outcome::Rejected(over_budget());
        }
        // The mutated tag byte may redirect to another algorithm; build
        // the codec from the *container's* claimed identity, like the
        // CLI does.
        let identity = reader.identity();
        let builder = identity.algorithm.build(identity.isa, reader.block_size());
        let handle = match builder.codec_from_bytes(reader.codec_bytes()) {
            Ok(handle) => handle,
            Err(e) => return Outcome::Rejected(e),
        };
        let codec = match handle.as_block() {
            Some(codec) => codec,
            None => return Outcome::Violation("container accepted a non-block codec".into()),
        };
        match reader.decode_text(codec) {
            Ok(_) => Outcome::Decoded,
            Err(e) => Outcome::Rejected(e),
        }
    }
}

/// Mutates the *uncompressed* text: serial and parallel compression must
/// agree byte-for-byte (or fail identically), and success must round-trip.
struct TextDifferentialTarget {
    label: String,
    codec: Box<dyn BlockCodec>,
    text: Vec<u8>,
}

impl FuzzTarget for TextDifferentialTarget {
    fn name(&self) -> String {
        format!("{}/text-diff", self.label)
    }

    fn artifact(&self) -> Artifact {
        let block = self.codec.block_size();
        let len = self.text.len();
        Artifact::with_boundaries("text", self.text.clone(), vec![4, block, 2 * block, len / 2])
    }

    fn run(&self, bytes: &[u8]) -> Outcome {
        let serial = self.codec.compress(bytes);
        let parallel = compress_parallel(self.codec.as_ref(), bytes, DIFFERENTIAL_WORKERS);
        match (serial, parallel) {
            (Ok(serial), Ok(parallel)) => {
                if serial != parallel {
                    return Outcome::Violation(
                        "serial and parallel compression produced different images".into(),
                    );
                }
                match self.codec.decompress(&serial) {
                    Ok(restored) if restored == bytes => Outcome::Decoded,
                    Ok(_) => Outcome::Violation("compressed text did not round-trip".into()),
                    Err(e) => {
                        Outcome::Violation(format!("own compressed image failed to decode: {e}"))
                    }
                }
            }
            (Err(serial), Err(parallel)) => {
                if serial.to_string() == parallel.to_string() {
                    Outcome::Rejected(serial)
                } else {
                    Outcome::Violation(format!(
                        "serial and parallel rejections differ: `{serial}` vs `{parallel}`"
                    ))
                }
            }
            (Ok(_), Err(e)) => {
                Outcome::Violation(format!("parallel failed where serial succeeded: {e}"))
            }
            (Err(e), Ok(_)) => {
                Outcome::Violation(format!("serial failed where parallel succeeded: {e}"))
            }
        }
    }
}

/// Mutates a serialized model-store record ([`cce_samc::store`]): any
/// parse failure must be a typed rejection, and a parse that succeeds
/// must re-serialize to exactly the bytes it was parsed from (the record
/// format is canonical — checksum, exact framing, no trailing slack).
struct StoreRecordTarget {
    record_bytes: Vec<u8>,
    codec_len: usize,
}

impl FuzzTarget for StoreRecordTarget {
    fn name(&self) -> String {
        "SAMC/store-record".into()
    }

    fn artifact(&self) -> Artifact {
        // Magic, version, key, cost, codec length, codec payload, checksum.
        Artifact::with_boundaries(
            "model-store record",
            self.record_bytes.clone(),
            vec![4, 6, 14, 22, 26, 26 + self.codec_len],
        )
    }

    fn run(&self, bytes: &[u8]) -> Outcome {
        let record = match cce_samc::store::ModelRecord::from_bytes(bytes) {
            Ok(record) => record,
            Err(e) => return Outcome::Rejected(e),
        };
        if record.to_bytes() == bytes {
            Outcome::Decoded
        } else {
            Outcome::Violation("accepted record did not re-serialize canonically".into())
        }
    }
}

// ---------------------------------------------------------------------
// File-codec targets
// ---------------------------------------------------------------------

/// Mutates a compressed file stream and decodes it (LZW under its output
/// budget; gzip's decoder is internally bounded by the declared length).
struct FileStreamTarget {
    algorithm: Algorithm,
    stream: Vec<u8>,
    budget: usize,
}

impl FuzzTarget for FileStreamTarget {
    fn name(&self) -> String {
        format!("{}/stream", self.algorithm)
    }

    fn artifact(&self) -> Artifact {
        let len = self.stream.len();
        Artifact::with_boundaries("stream", self.stream.clone(), vec![3, 4, len / 2])
    }

    fn run(&self, bytes: &[u8]) -> Outcome {
        let result = match self.algorithm {
            Algorithm::UnixCompress => Lzw::new()
                .decompress_bounded(bytes, self.budget)
                .map_err(|e| CodecError::corrupt("compress", e)),
            Algorithm::Gzip => {
                Gzip::new().decompress(bytes).map_err(|e| CodecError::corrupt("gzip", e))
            }
            _ => return Outcome::Violation("file target built for a block algorithm".into()),
        };
        match result {
            Ok(_) => Outcome::Decoded,
            Err(e) => Outcome::Rejected(e),
        }
    }
}

/// Mutates the uncompressed text for a file codec: compression is total,
/// and its output must round-trip.
struct FileTextTarget {
    algorithm: Algorithm,
    text: Vec<u8>,
}

impl FuzzTarget for FileTextTarget {
    fn name(&self) -> String {
        format!("{}/text-diff", self.algorithm)
    }

    fn artifact(&self) -> Artifact {
        let len = self.text.len();
        Artifact::with_boundaries("text", self.text.clone(), vec![4, len / 2])
    }

    fn run(&self, bytes: &[u8]) -> Outcome {
        let handle = self
            .algorithm
            .build(Isa::Mips, 32)
            .train(&[])
            .expect("file codecs train unconditionally");
        let codec = match handle.as_file() {
            Some(codec) => codec,
            None => return Outcome::Violation("registry built a non-file codec".into()),
        };
        let compressed = codec.compress(bytes);
        match codec.decompress(&compressed) {
            Ok(restored) if restored == bytes => Outcome::Decoded,
            Ok(_) => Outcome::Violation("file codec round trip mismatch".into()),
            Err(e) => Outcome::Violation(format!("own compressed stream failed to decode: {e}")),
        }
    }
}

/// Mutates one raw interleaved-rANS block stream: the header tag, the
/// per-lane final states, and the renorm word stream all sit in the
/// mutation surface.  The decoder must reject malformed streams with
/// typed errors (truncation mid-refill, bad lane tag, lane-state
/// under-run) and never panic; a stream it accepts must produce exactly
/// the block's declared output length.
struct RansStreamTarget {
    codec: cce_rans::SamcRansCodec,
    block_bytes: Vec<u8>,
    out_len: usize,
}

impl FuzzTarget for RansStreamTarget {
    fn name(&self) -> String {
        "samc-rans/stream".into()
    }

    fn artifact(&self) -> Artifact {
        // Header tag, each lane's 4-byte final state, then the shared
        // renorm word stream (spliced at a word boundary).
        let lanes = self.codec.lanes().get();
        let mut boundaries: Vec<usize> = (0..=lanes).map(|i| 1 + 4 * i).collect();
        let words_mid = 1 + 4 * lanes + (self.block_bytes.len() - 1 - 4 * lanes) / 4 * 2;
        boundaries.push(words_mid);
        Artifact::with_boundaries("rans stream", self.block_bytes.clone(), boundaries)
    }

    fn run(&self, bytes: &[u8]) -> Outcome {
        match self.codec.decompress_block(bytes, self.out_len) {
            Ok(block) if block.len() == self.out_len => Outcome::Decoded,
            Ok(block) => Outcome::Violation(format!(
                "decoder returned {} bytes for a {}-byte block",
                block.len(),
                self.out_len
            )),
            Err(e) => Outcome::Rejected(e),
        }
    }
}

// ---------------------------------------------------------------------
// Serving-tier targets
// ---------------------------------------------------------------------

/// Wraps a serving-tier rejection as the [`CodecError`] the fuzz
/// harness counts; the typed [`cce_serve::ServeError`] message rides
/// along.
fn serve_reject(e: cce_serve::ServeError) -> CodecError {
    CodecError::corrupt("serve", e.to_string())
}

/// A small synthetic-but-valid artifact manifest (no disk involved):
/// two chunks, five blocks, all digests self-consistent.
fn golden_manifest_json() -> Vec<u8> {
    use cce_serve::manifest::{ChunkEntry, SectionDigest};
    use cce_serve::sha256;
    let chunk_data = [vec![0xa5u8; 96], vec![0x5au8; 64]];
    let model = b"serve fuzz model";
    let index = vec![0u8; 5 * 16];
    let chunks = vec![
        ChunkEntry {
            first_block: 0,
            blocks: 3,
            compressed_len: chunk_data[0].len() as u64,
            uncompressed_len: 96,
            sha256: sha256::digest(&chunk_data[0]),
        },
        ChunkEntry {
            first_block: 3,
            blocks: 2,
            compressed_len: chunk_data[1].len() as u64,
            uncompressed_len: 64,
            sha256: sha256::digest(&chunk_data[1]),
        },
    ];
    let mut manifest = cce_serve::Manifest {
        algorithm: "samc".into(),
        isa: "mips".into(),
        class: 0,
        endianness: 1,
        entry: 0x40_0000,
        block_size: 32,
        blocks: 5,
        original_len: 160,
        data_len: 160,
        model_bytes: model.len() as u64,
        chunk_payload: 4096,
        model: SectionDigest { len: model.len() as u64, sha256: sha256::digest(model) },
        index: SectionDigest { len: index.len() as u64, sha256: sha256::digest(&index) },
        chunks,
        total_sha256: [0; 32],
    };
    manifest.total_sha256 = manifest.compute_total();
    manifest.to_json().into_bytes()
}

/// Mutates the manifest JSON document: any parse failure must be a
/// typed rejection, and an accepted manifest must round-trip through
/// its own canonical rendering.
struct ManifestTarget {
    manifest_json: Vec<u8>,
}

impl FuzzTarget for ManifestTarget {
    fn name(&self) -> String {
        "serve/manifest".into()
    }

    fn artifact(&self) -> Artifact {
        // Scalar header, section digests, chunk table, binding digest.
        let len = self.manifest_json.len();
        Artifact::with_boundaries(
            "artifact manifest",
            self.manifest_json.clone(),
            vec![16, len / 4, len / 2, 3 * len / 4],
        )
    }

    fn run(&self, bytes: &[u8]) -> Outcome {
        let manifest = match cce_serve::Manifest::parse(bytes) {
            Ok(manifest) => manifest,
            Err(e) => return Outcome::Rejected(serve_reject(e)),
        };
        // Anything accepted must survive its own canonical rendering —
        // a mutation that parses but re-renders differently would let
        // two verifiers disagree about the same artifact.
        match cce_serve::Manifest::parse(manifest.to_json().as_bytes()) {
            Ok(again) if again == manifest => Outcome::Decoded,
            Ok(_) => Outcome::Violation("accepted manifest re-rendered differently".into()),
            Err(e) => Outcome::Violation(format!("accepted manifest failed to re-parse: {e}")),
        }
    }
}

/// Mutates a pipelined request stream (every opcode, back to back):
/// the frame reader and request parser must reject malformed input
/// with typed errors, and anything accepted must round-trip through
/// its canonical encoding.
struct ServeFrameTarget {
    stream: Vec<u8>,
    boundaries: Vec<usize>,
}

impl ServeFrameTarget {
    fn golden() -> Self {
        use cce_serve::proto::Request;
        let requests = [
            Request::GetManifest,
            Request::GetBlock(3),
            Request::DecodeBlock(1),
            Request::Stats,
            Request::Shutdown,
        ];
        let mut stream = Vec::new();
        let mut boundaries = vec![4, 5]; // magic and opcode of the first frame
        for req in requests {
            stream.extend_from_slice(&req.encode());
            boundaries.push(stream.len());
        }
        boundaries.pop(); // end-of-stream is not a splice point
        Self { stream, boundaries }
    }
}

impl FuzzTarget for ServeFrameTarget {
    fn name(&self) -> String {
        "serve/frame".into()
    }

    fn artifact(&self) -> Artifact {
        Artifact::with_boundaries("request stream", self.stream.clone(), self.boundaries.clone())
    }

    fn run(&self, bytes: &[u8]) -> Outcome {
        use cce_serve::proto::{read_frame, Request, MAX_REQUEST_PAYLOAD};
        let mut cursor = bytes;
        loop {
            let frame = match read_frame(&mut cursor, MAX_REQUEST_PAYLOAD) {
                Ok(None) => return Outcome::Decoded,
                Ok(Some(frame)) => frame,
                // The server treats this as a fatal desync: typed
                // error, connection closed, daemon alive.
                Err(e) => return Outcome::Rejected(serve_reject(e)),
            };
            let request = match Request::parse(&frame) {
                Ok(request) => request,
                // The server's Malformed path: BadRequest, keep going —
                // either way a typed rejection, never a panic.
                Err(e) => return Outcome::Rejected(serve_reject(e)),
            };
            let reencoded = request.encode();
            let again = match read_frame(&mut reencoded.as_slice(), MAX_REQUEST_PAYLOAD) {
                Ok(Some(frame)) => Request::parse(&frame).ok(),
                _ => return Outcome::Violation("canonical encoding failed to read back".into()),
            };
            if again != Some(request) {
                return Outcome::Violation(format!(
                    "request {request:?} did not round-trip its canonical encoding"
                ));
            }
        }
    }
}

/// The serving-tier fuzz targets (manifest documents and wire frames).
pub fn serve_targets() -> Vec<Box<dyn FuzzTarget>> {
    vec![
        Box::new(ManifestTarget { manifest_json: golden_manifest_json() }),
        Box::new(ServeFrameTarget::golden()),
    ]
}

// ---------------------------------------------------------------------
// Target construction and entry points
// ---------------------------------------------------------------------

/// Builds the block-codec target set for one (algorithm, ISA, label).
fn block_targets_for(
    algorithm: Algorithm,
    isa: Isa,
    label: &str,
    text: Vec<u8>,
) -> Vec<Box<dyn FuzzTarget>> {
    let builder = algorithm.build(isa, 32);
    let train = |purpose: &str| {
        let handle = builder
            .train(&text)
            .unwrap_or_else(|e| panic!("{label}: golden training failed ({purpose}): {e}"));
        match handle {
            crate::registry::CodecHandle::Block(codec) => codec,
            crate::registry::CodecHandle::File(_) => {
                panic!("{label}: expected a block codec")
            }
        }
    };
    let codec = train("targets");
    let golden_image = codec.compress(&text).expect("golden compression succeeds");
    let codec_bytes = codec.to_bytes();
    let image_bytes = golden_image.to_bytes();
    let budget = budget_for(text.len());
    let container_bytes = Container {
        algorithm,
        isa,
        class: cce_elf::Class::Elf32,
        endianness: cce_elf::Endianness::Big,
        entry: 0x40_0000,
        codec_bytes: &codec_bytes,
        image_bytes: &image_bytes,
    }
    .to_bytes();
    // The same golden payload repackaged as a streamed v2 container.
    let identity = ContainerIdentity {
        algorithm,
        isa,
        class: cce_elf::Class::Elf32,
        endianness: cce_elf::Endianness::Big,
        entry: 0x40_0000,
    };
    let mut v2_bytes = Vec::new();
    let mut writer = ContainerWriter::new(
        &mut v2_bytes,
        identity,
        codec.block_size(),
        codec.model_bytes(),
        &codec_bytes,
    )
    .expect("golden v2 header");
    for index in 0..golden_image.block_count() {
        writer
            .accept(CompressedBlock {
                index,
                uncompressed_len: golden_image.block_uncompressed_len(index),
                data: golden_image.block(index).to_vec(),
            })
            .expect("golden v2 block");
    }
    writer.finish().expect("golden v2 trailer");

    vec![
        Box::new(CodecBytesTarget {
            label: label.to_string(),
            builder,
            codec_bytes: codec_bytes.clone(),
            golden_image: golden_image.clone(),
        }),
        Box::new(ImageBytesTarget {
            label: label.to_string(),
            codec: train("image target"),
            image_bytes,
            block_count: golden_image.block_count(),
            budget,
        }),
        Box::new(ContainerTarget {
            label: label.to_string(),
            builder,
            container_bytes,
            codec_len: codec_bytes.len(),
            budget,
        }),
        Box::new(ContainerV2Target {
            label: label.to_string(),
            container_bytes: v2_bytes,
            codec_len: codec_bytes.len(),
            budget,
        }),
        Box::new(TextDifferentialTarget { label: label.to_string(), codec, text }),
    ]
}

/// All fuzz targets for `algorithm`.
///
/// Block algorithms get five targets (codec model, block image, v1
/// container, v2 streamed container, differential text); SAMC
/// additionally gets the model-store
/// record target, SADC the x86 codec and image targets since its two
/// ISA variants are distinct decoders, and samc-rans a raw-stream target
/// putting the rANS header, lane states, and renorm words in the
/// mutation surface.  File algorithms get a mutated-stream target and a
/// round-trip text target.
///
/// # Panics
///
/// Panics if golden training fails — the golden workload is fixed, so
/// that is a build regression, not an input condition.
pub fn targets(algorithm: Algorithm) -> Vec<Box<dyn FuzzTarget>> {
    match algorithm {
        Algorithm::UnixCompress | Algorithm::Gzip => {
            let text = mips_text();
            let stream = match algorithm {
                Algorithm::UnixCompress => Lzw::new().compress(&text),
                _ => Gzip::new().compress(&text),
            };
            vec![
                Box::new(FileStreamTarget { algorithm, stream, budget: budget_for(text.len()) }),
                Box::new(FileTextTarget { algorithm, text }),
            ]
        }
        Algorithm::ByteHuffman => {
            block_targets_for(algorithm, Isa::Mips, &algorithm.to_string(), mips_text())
        }
        Algorithm::Samc => {
            let text = mips_text();
            let mut all =
                block_targets_for(algorithm, Isa::Mips, &algorithm.to_string(), text.clone());
            // SAMC's extra decode surface: the model-cache record wrapping
            // its serialized codec.
            let codec = cce_samc::SamcCodec::train(&text, cce_samc::SamcConfig::mips())
                .expect("SAMC: golden training failed (store record)");
            let key = cce_samc::store::ModelKey::for_request(
                &text,
                codec.config(),
                &cce_samc::OptimizeConfig::default(),
            );
            let codec_len = codec.to_bytes().len();
            let record = cce_samc::store::ModelRecord::new(key, 0.0, codec);
            all.push(Box::new(StoreRecordTarget { record_bytes: record.to_bytes(), codec_len }));
            all
        }
        Algorithm::Sadc => {
            let mut all = block_targets_for(algorithm, Isa::Mips, "SADC", mips_text());
            // The x86 variant is a different decoder (byte-aligned dictionary
            // with instruction grouping); fuzz its serialized surfaces too.
            let mut x86 = block_targets_for(algorithm, Isa::X86, "SADC[x86]", x86_text());
            all.append(&mut x86);
            all
        }
        Algorithm::SamcRans => {
            let text = mips_text();
            let mut all =
                block_targets_for(algorithm, Isa::Mips, &algorithm.to_string(), text.clone());
            // The rANS-specific decode surface: one raw block stream with
            // its self-describing header in the mutation surface.
            let codec = cce_rans::SamcRansCodec::train(
                &text,
                cce_samc::SamcConfig::mips(),
                cce_rans::Lanes::default(),
            )
            .expect("samc-rans: golden training failed (stream target)");
            let image = codec.compress(&text).expect("samc-rans: golden compression succeeds");
            let block_bytes = image.block(0).to_vec();
            let out_len = image.block_uncompressed_len(0);
            all.push(Box::new(RansStreamTarget { codec, block_bytes, out_len }));
            all
        }
    }
}

/// Fuzzes every target of `algorithm` and returns one report per target.
pub fn run(algorithm: Algorithm, config: &FuzzConfig) -> Vec<FuzzReport> {
    targets(algorithm).iter().map(|target| fuzz_target(target.as_ref(), config)).collect()
}

/// Fuzzes the serving-tier targets ([`serve_targets`]).
pub fn run_serve(config: &FuzzConfig) -> Vec<FuzzReport> {
    serve_targets().iter().map(|target| fuzz_target(target.as_ref(), config)).collect()
}

/// Fuzzes every registered algorithm, then the serving tier.
pub fn run_all(config: &FuzzConfig) -> Vec<FuzzReport> {
    let mut reports: Vec<FuzzReport> =
        Algorithm::ALL.into_iter().flat_map(|algorithm| run(algorithm, config)).collect();
    reports.extend(run_serve(config));
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algorithm_has_targets() {
        assert_eq!(targets(Algorithm::UnixCompress).len(), 2);
        assert_eq!(targets(Algorithm::Gzip).len(), 2);
        assert_eq!(targets(Algorithm::ByteHuffman).len(), 5);
        assert_eq!(targets(Algorithm::Samc).len(), 6);
        assert_eq!(targets(Algorithm::Sadc).len(), 10);
        assert_eq!(targets(Algorithm::SamcRans).len(), 6);
        assert_eq!(serve_targets().len(), 2);
    }

    #[test]
    fn target_names_are_distinct() {
        let mut names: Vec<String> = Algorithm::ALL
            .into_iter()
            .flat_map(|a| targets(a).iter().map(|t| t.name()).collect::<Vec<_>>())
            .chain(serve_targets().iter().map(|t| t.name()))
            .collect();
        let total = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate target names");
    }

    #[test]
    fn pristine_artifacts_decode() {
        // Case 0 aside, the *unmutated* artifact must decode cleanly for
        // every target — otherwise the fuzz results are meaningless.
        let all = Algorithm::ALL.into_iter().flat_map(targets).chain(serve_targets());
        for target in all {
            let artifact = target.artifact();
            assert!(
                matches!(target.run(&artifact.bytes), Outcome::Decoded),
                "{} failed on its pristine artifact",
                target.name()
            );
        }
    }
}
