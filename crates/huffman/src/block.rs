//! Byte-based Huffman block compression (the Kozuch–Wolfe baseline).
//!
//! Kozuch & Wolfe (ICCD 1994) compress embedded programs with a single
//! program-wide Huffman code over *bytes*, restarting at cache-block
//! boundaries so any block is independently decompressible.  The DAC'98
//! paper uses this scheme (compression ratio ≈ 0.73 on MIPS) as the prior
//! state of the art in Fig. 9; SAMC and SADC both beat it because a byte
//! code ignores instruction-field structure and inter-instruction
//! dependence.
//!
//! # Examples
//!
//! ```
//! use cce_codec::BlockCodec;
//! use cce_huffman::block::ByteBlockCodec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program: Vec<u8> = (0..4096).map(|i| (i % 7) as u8).collect();
//! let codec = ByteBlockCodec::train(&program, 32)?;
//! let image = codec.compress(&program);
//! assert!(image.compressed_len() < program.len());
//!
//! let block1 = codec.decompress_block(image.block(1), 32)?;
//! assert_eq!(block1, &program[32..64]);
//! # Ok(())
//! # }
//! ```

use crate::codebook::CodeBook;
use cce_bitstream::{BitReader, BitWriter, ByteCursor};
use cce_codec::{BlockCodec, BlockImage, CodecError};

/// Longest codeword the byte codec will assign; 16 bits keeps the hardware
/// table decoder's shift register small.
const MAX_CODE_LEN: u8 = 16;

/// Magic number opening a serialized [`ByteBlockCodec`].
const MAGIC: &[u8; 4] = b"CHUF";
/// Serialization format version.
const VERSION: u16 = 1;
/// Bits per serialized code length (codewords are at most 16 bits).
const LEN_BITS: u32 = 5;

/// Program-wide byte Huffman codec with block restart.
#[derive(Debug, Clone)]
pub struct ByteBlockCodec {
    book: CodeBook,
    /// One-load decode acceleration (derived from `book`).
    table: crate::DecodeTable,
    block_size: usize,
}

impl ByteBlockCodec {
    /// Gathers byte statistics over the whole program (the semiadaptive
    /// pass) and builds the shared code table for `block_size`-byte
    /// cache blocks.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Train`] for an empty program or a zero block
    /// size.
    pub fn train(program: &[u8], block_size: usize) -> Result<Self, CodecError> {
        if block_size == 0 {
            return Err(CodecError::train("huffman", "block size must be positive"));
        }
        let mut freqs = [0u64; 256];
        for &b in program {
            freqs[usize::from(b)] += 1;
        }
        let book = CodeBook::from_frequencies(&freqs, MAX_CODE_LEN)
            .map_err(|e| CodecError::from(e).named("huffman"))?;
        let table = book.decode_table();
        Ok(Self { book, table, block_size })
    }

    /// The underlying code book.
    pub fn code_book(&self) -> &CodeBook {
        &self.book
    }

    /// Size of the serialized code table: 256 lengths at 5 bits, rounded up.
    pub fn table_bytes(&self) -> usize {
        (256usize * LEN_BITS as usize).div_ceil(8)
    }

    /// Compresses `program` into independently decodable blocks.
    ///
    /// Convenience wrapper over [`BlockCodec::compress`] for programs known
    /// to be encodable with this codec's table.
    ///
    /// # Panics
    ///
    /// Panics if `program` contains a byte absent from the training
    /// program; use [`BlockCodec::compress`] to handle that case.
    pub fn compress(&self, program: &[u8]) -> BlockImage {
        BlockCodec::compress(self, program).expect("program must match the trained byte alphabet")
    }

    /// Serializes the codec: magic, version, block size, then the 256
    /// canonical code lengths at 5 bits each.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_be_bytes());
        out.extend_from_slice(&(self.block_size as u32).to_be_bytes());
        let mut w = BitWriter::new();
        for symbol in 0..=255u16 {
            w.write_bits(u32::from(self.book.length(symbol)), LEN_BITS);
        }
        w.align_to_byte();
        out.extend_from_slice(w.as_bytes());
        out
    }

    /// Reads a codec previously written by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Corrupt`] on bad magic, truncation, or code
    /// lengths that do not form a valid prefix code.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let named = |e: CodecError| e.named("huffman");
        let mut cursor = ByteCursor::new(bytes);
        let magic = cursor.read_bytes(4).map_err(|e| named(e.into()))?;
        if magic != MAGIC {
            return Err(CodecError::corrupt("huffman", "bad magic number"));
        }
        let version = cursor.read_u16_be().map_err(|e| named(e.into()))?;
        if version != VERSION {
            return Err(CodecError::corrupt("huffman", format!("unsupported version {version}")));
        }
        let block_size = cursor.read_u32_be().map_err(|e| named(e.into()))? as usize;
        if block_size == 0 {
            return Err(CodecError::corrupt("huffman", "zero block size"));
        }
        let mut r = BitReader::new(cursor.read_bytes(cursor.remaining()).expect("length checked"));
        let mut lengths = Vec::with_capacity(256);
        for _ in 0..256 {
            let len = r.read_bits(LEN_BITS).map_err(|e| named(CodecError::from(e)))?;
            lengths.push(len as u8);
        }
        let book = CodeBook::from_lengths(lengths)
            .map_err(|_| CodecError::corrupt("huffman", "invalid code lengths"))?;
        let table = book.decode_table();
        Ok(Self { book, table, block_size })
    }

    /// Decompresses a whole [`BlockImage`] back into the original program.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Corrupt`] on any corrupt block.
    pub fn decompress(&self, image: &BlockImage) -> Result<Vec<u8>, CodecError> {
        BlockCodec::decompress(self, image)
    }
}

impl BlockCodec for ByteBlockCodec {
    fn name(&self) -> &'static str {
        "huffman"
    }

    fn block_size(&self) -> usize {
        self.block_size
    }

    fn model_bytes(&self) -> usize {
        self.table_bytes()
    }

    fn to_bytes(&self) -> Vec<u8> {
        Self::to_bytes(self)
    }

    fn compress_chunk(&self, chunk: &[u8]) -> Result<Vec<u8>, CodecError> {
        let _span = crate::obs::COMPRESS_SPAN.time();
        crate::obs::ENCODED_SYMBOLS.add(chunk.len() as u64);
        let mut w = BitWriter::new();
        for &b in chunk {
            if self.book.length(u16::from(b)) == 0 {
                return Err(CodecError::train(
                    "huffman",
                    format!("byte {b:#04x} was absent from the training program"),
                ));
            }
            self.book.encode(&mut w, u16::from(b));
        }
        w.align_to_byte();
        Ok(w.into_bytes())
    }

    fn decompress_block(&self, block: &[u8], out_len: usize) -> Result<Vec<u8>, CodecError> {
        let _span = crate::obs::DECOMPRESS_SPAN.time();
        crate::obs::DECODED_SYMBOLS.add(out_len as u64);
        let mut r = BitReader::new(block);
        let mut out = Vec::with_capacity(out_len);
        for _ in 0..out_len {
            let symbol =
                self.table.decode(&mut r).map_err(|e| CodecError::from(e).named("huffman"))?;
            out.push(symbol as u8);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program(len: usize) -> Vec<u8> {
        // Byte-skewed source resembling opcode-heavy code.
        (0..len)
            .map(|i| match i % 10 {
                0..=5 => (i % 4) as u8,
                6..=8 => (i % 16) as u8,
                _ => (i * 31 % 256) as u8,
            })
            .collect()
    }

    #[test]
    fn whole_program_round_trips() {
        let program = sample_program(1000);
        let codec = ByteBlockCodec::train(&program, 32).unwrap();
        let image = codec.compress(&program);
        assert_eq!(codec.decompress(&image).unwrap(), program);
    }

    #[test]
    fn every_block_is_independently_decodable() {
        let program = sample_program(512);
        let codec = ByteBlockCodec::train(&program, 32).unwrap();
        let image = codec.compress(&program);
        for (i, chunk) in program.chunks(32).enumerate() {
            let decoded = codec.decompress_block(image.block(i), chunk.len()).unwrap();
            assert_eq!(decoded, chunk, "block {i}");
        }
    }

    #[test]
    fn short_final_block_is_handled() {
        let program = sample_program(100); // 3 full blocks + 4 bytes
        let codec = ByteBlockCodec::train(&program, 32).unwrap();
        let image = codec.compress(&program);
        assert_eq!(image.block_count(), 4);
        assert_eq!(codec.decompress(&image).unwrap(), program);
    }

    #[test]
    fn skewed_source_compresses_below_unity() {
        let program = sample_program(8192);
        let codec = ByteBlockCodec::train(&program, 32).unwrap();
        let image = codec.compress(&program);
        assert!(image.ratio() < 1.0, "ratio {}", image.ratio());
        assert_eq!(image.original_len(), 8192);
    }

    #[test]
    fn uniform_random_source_does_not_compress() {
        // A source using all 256 bytes uniformly: ratio ≈ 1 + table overhead.
        let program: Vec<u8> = (0..4096).map(|i| (i * 167 % 256) as u8).collect();
        let codec = ByteBlockCodec::train(&program, 32).unwrap();
        let image = codec.compress(&program);
        assert!(image.ratio() > 0.95);
    }

    #[test]
    fn empty_program_is_an_error() {
        assert!(matches!(
            ByteBlockCodec::train(&[], 32),
            Err(CodecError::Train { codec: "huffman", .. })
        ));
        assert!(ByteBlockCodec::train(b"abc", 0).is_err());
    }

    #[test]
    fn block_size_accounting() {
        let program = sample_program(256);
        let codec = ByteBlockCodec::train(&program, 64).unwrap();
        let image = codec.compress(&program);
        assert_eq!(image.block_size(), 64);
        let block_total: usize = (0..image.block_count()).map(|i| image.block(i).len()).sum();
        assert_eq!(image.compressed_len(), block_total + codec.table_bytes());
    }

    #[test]
    fn untrained_byte_is_a_train_error_not_a_panic() {
        let codec = ByteBlockCodec::train(b"aaaabbbb", 4).unwrap();
        let err = BlockCodec::compress(&codec, b"aaaz").unwrap_err();
        assert!(matches!(err, CodecError::Train { codec: "huffman", .. }));
    }

    #[test]
    fn serialization_round_trips() {
        let program = sample_program(600);
        let codec = ByteBlockCodec::train(&program, 32).unwrap();
        let bytes = ByteBlockCodec::to_bytes(&codec);
        assert_eq!(bytes.len(), 4 + 2 + 4 + codec.table_bytes());
        let restored = ByteBlockCodec::from_bytes(&bytes).unwrap();
        assert_eq!(restored.block_size(), 32);
        assert_eq!(restored.code_book().lengths(), codec.code_book().lengths());
        assert_eq!(restored.compress(&program), codec.compress(&program));
    }

    #[test]
    fn corrupt_serialization_fails_cleanly() {
        let program = sample_program(600);
        let codec = ByteBlockCodec::train(&program, 32).unwrap();
        let bytes = ByteBlockCodec::to_bytes(&codec);
        for len in 0..bytes.len() {
            assert!(ByteBlockCodec::from_bytes(&bytes[..len]).is_err(), "prefix {len}");
        }
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(ByteBlockCodec::from_bytes(&bad).is_err());
        // All-zero lengths: structurally readable but not a valid code.
        let mut zeros = bytes.clone();
        for b in &mut zeros[10..] {
            *b = 0;
        }
        assert!(matches!(
            ByteBlockCodec::from_bytes(&zeros),
            Err(CodecError::Corrupt { codec: "huffman", .. })
        ));
    }
}
