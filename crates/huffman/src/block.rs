//! Byte-based Huffman block compression (the Kozuch–Wolfe baseline).
//!
//! Kozuch & Wolfe (ICCD 1994) compress embedded programs with a single
//! program-wide Huffman code over *bytes*, restarting at cache-block
//! boundaries so any block is independently decompressible.  The DAC'98
//! paper uses this scheme (compression ratio ≈ 0.73 on MIPS) as the prior
//! state of the art in Fig. 9; SAMC and SADC both beat it because a byte
//! code ignores instruction-field structure and inter-instruction
//! dependence.
//!
//! # Examples
//!
//! ```
//! use cce_huffman::block::ByteBlockCodec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program: Vec<u8> = (0..4096).map(|i| (i % 7) as u8).collect();
//! let codec = ByteBlockCodec::train(&program)?;
//! let image = codec.compress(&program, 32);
//! assert!(image.compressed_len() < program.len());
//!
//! let block1 = codec.decompress_block(image.block(1), 32)?;
//! assert_eq!(block1, &program[32..64]);
//! # Ok(())
//! # }
//! ```

use crate::codebook::{BuildCodeBookError, CodeBook, DecodeSymbolError};
use cce_bitstream::{BitReader, BitWriter};

/// Longest codeword the byte codec will assign; 16 bits keeps the hardware
/// table decoder's shift register small.
const MAX_CODE_LEN: u8 = 16;

/// A program compressed block-by-block with one shared byte code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockImage {
    blocks: Vec<Vec<u8>>,
    block_size: usize,
    original_len: usize,
    table_bytes: usize,
}

impl BlockImage {
    /// The compressed bytes of block `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn block(&self, index: usize) -> &[u8] {
        &self.blocks[index]
    }

    /// Number of cache blocks in the image.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Uncompressed block size in bytes this image was built with.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Original program length in bytes.
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// Total compressed size: all blocks plus the serialized code table.
    pub fn compressed_len(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum::<usize>() + self.table_bytes
    }

    /// Compression ratio (compressed / original); lower is better.
    pub fn ratio(&self) -> f64 {
        self.compressed_len() as f64 / self.original_len as f64
    }
}

/// Program-wide byte Huffman codec with block restart.
#[derive(Debug, Clone)]
pub struct ByteBlockCodec {
    book: CodeBook,
    /// One-load decode acceleration (derived from `book`).
    table: crate::DecodeTable,
}

impl ByteBlockCodec {
    /// Gathers byte statistics over the whole program (the semiadaptive
    /// pass) and builds the shared code table.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCodeBookError::NoSymbols`] for an empty program.
    pub fn train(program: &[u8]) -> Result<Self, BuildCodeBookError> {
        let mut freqs = [0u64; 256];
        for &b in program {
            freqs[usize::from(b)] += 1;
        }
        let book = CodeBook::from_frequencies(&freqs, MAX_CODE_LEN)?;
        let table = book.decode_table();
        Ok(Self { book, table })
    }

    /// The underlying code book.
    pub fn code_book(&self) -> &CodeBook {
        &self.book
    }

    /// Size of the serialized code table: 256 lengths at 5 bits, rounded up.
    pub fn table_bytes(&self) -> usize {
        (256usize * 5).div_ceil(8)
    }

    /// Compresses `program` into independently decodable blocks of
    /// `block_size` uncompressed bytes (the last block may be short).
    ///
    /// # Panics
    ///
    /// Panics if `block_size == 0`, or if `program` contains a byte that was
    /// absent from the training program.
    pub fn compress(&self, program: &[u8], block_size: usize) -> BlockImage {
        assert!(block_size > 0, "block size must be positive");
        let blocks = program
            .chunks(block_size)
            .map(|chunk| {
                let mut w = BitWriter::new();
                for &b in chunk {
                    self.book.encode(&mut w, u16::from(b));
                }
                w.align_to_byte();
                w.into_bytes()
            })
            .collect();
        BlockImage {
            blocks,
            block_size,
            original_len: program.len(),
            table_bytes: self.table_bytes(),
        }
    }

    /// Decompresses one block of `out_len` uncompressed bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeSymbolError`] if the block is truncated or does not
    /// match the code table.
    pub fn decompress_block(
        &self,
        bytes: &[u8],
        out_len: usize,
    ) -> Result<Vec<u8>, DecodeSymbolError> {
        let mut r = BitReader::new(bytes);
        let mut out = Vec::with_capacity(out_len);
        for _ in 0..out_len {
            out.push(self.table.decode(&mut r)? as u8);
        }
        Ok(out)
    }

    /// Decompresses a whole [`BlockImage`] back into the original program.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeSymbolError`] on any corrupt block.
    pub fn decompress(&self, image: &BlockImage) -> Result<Vec<u8>, DecodeSymbolError> {
        let mut out = Vec::with_capacity(image.original_len);
        for (i, block) in image.blocks.iter().enumerate() {
            let remaining = image.original_len - i * image.block_size;
            let len = remaining.min(image.block_size);
            out.extend(self.decompress_block(block, len)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program(len: usize) -> Vec<u8> {
        // Byte-skewed source resembling opcode-heavy code.
        (0..len)
            .map(|i| match i % 10 {
                0..=5 => (i % 4) as u8,
                6..=8 => (i % 16) as u8,
                _ => (i * 31 % 256) as u8,
            })
            .collect()
    }

    #[test]
    fn whole_program_round_trips() {
        let program = sample_program(1000);
        let codec = ByteBlockCodec::train(&program).unwrap();
        let image = codec.compress(&program, 32);
        assert_eq!(codec.decompress(&image).unwrap(), program);
    }

    #[test]
    fn every_block_is_independently_decodable() {
        let program = sample_program(512);
        let codec = ByteBlockCodec::train(&program).unwrap();
        let image = codec.compress(&program, 32);
        for (i, chunk) in program.chunks(32).enumerate() {
            let decoded = codec.decompress_block(image.block(i), chunk.len()).unwrap();
            assert_eq!(decoded, chunk, "block {i}");
        }
    }

    #[test]
    fn short_final_block_is_handled() {
        let program = sample_program(100); // 3 full blocks + 4 bytes
        let codec = ByteBlockCodec::train(&program).unwrap();
        let image = codec.compress(&program, 32);
        assert_eq!(image.block_count(), 4);
        assert_eq!(codec.decompress(&image).unwrap(), program);
    }

    #[test]
    fn skewed_source_compresses_below_unity() {
        let program = sample_program(8192);
        let codec = ByteBlockCodec::train(&program).unwrap();
        let image = codec.compress(&program, 32);
        assert!(image.ratio() < 1.0, "ratio {}", image.ratio());
        assert_eq!(image.original_len(), 8192);
    }

    #[test]
    fn uniform_random_source_does_not_compress() {
        // A source using all 256 bytes uniformly: ratio ≈ 1 + table overhead.
        let program: Vec<u8> = (0..4096).map(|i| (i * 167 % 256) as u8).collect();
        let codec = ByteBlockCodec::train(&program).unwrap();
        let image = codec.compress(&program, 32);
        assert!(image.ratio() > 0.95);
    }

    #[test]
    fn empty_program_is_an_error() {
        assert!(ByteBlockCodec::train(&[]).is_err());
    }

    #[test]
    fn block_size_accounting() {
        let program = sample_program(256);
        let codec = ByteBlockCodec::train(&program).unwrap();
        let image = codec.compress(&program, 64);
        assert_eq!(image.block_size(), 64);
        let block_total: usize = (0..image.block_count()).map(|i| image.block(i).len()).sum();
        assert_eq!(image.compressed_len(), block_total + codec.table_bytes());
    }
}
