//! Preregistered metric handles for the byte-Huffman baseline codec.

use cce_obs::{Counter, Desc, SpanStat};

/// Wall-clock time spent Huffman-encoding blocks.
pub static COMPRESS_SPAN: SpanStat = SpanStat::new();
/// Wall-clock time spent Huffman-decoding blocks.
pub static DECOMPRESS_SPAN: SpanStat = SpanStat::new();
/// Bytes (symbols) encoded by the byte codec.
pub static ENCODED_SYMBOLS: Counter = Counter::new();
/// Bytes (symbols) decoded by the byte codec.
pub static DECODED_SYMBOLS: Counter = Counter::new();

/// Descriptors for every metric this crate registers.
pub fn descriptors() -> [Desc; 4] {
    [
        Desc::span("huffman.compress.span", "time compressing Huffman blocks", &COMPRESS_SPAN),
        Desc::span(
            "huffman.decompress.span",
            "time decompressing Huffman blocks",
            &DECOMPRESS_SPAN,
        ),
        Desc::counter(
            "huffman.compress.symbols",
            "byte symbols encoded by the Huffman baseline",
            &ENCODED_SYMBOLS,
        ),
        Desc::counter(
            "huffman.decompress.symbols",
            "byte symbols decoded by the Huffman baseline",
            &DECODED_SYMBOLS,
        ),
    ]
}
