//! Table-driven Huffman decoding.
//!
//! The canonical decoder in [`CodeBook::decode`] walks the code one bit at
//! a time — the faithful model of a shift-register hardware decoder.  For
//! software decompression throughput, [`DecodeTable`] resolves any code of
//! up to `root_bits` bits with a single indexed load (longer codes fall
//! back to the canonical walk), the standard one-level acceleration used
//! by production inflate implementations.
//!
//! # Examples
//!
//! ```
//! use cce_huffman::CodeBook;
//! use cce_bitstream::{BitReader, BitWriter};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let book = CodeBook::from_frequencies(&[7, 2, 1, 1], 15)?;
//! let table = book.decode_table();
//!
//! let mut w = BitWriter::new();
//! for &s in &[0u16, 2, 0, 3, 1] {
//!     book.encode(&mut w, s);
//! }
//! let bytes = w.into_bytes();
//! let mut r = BitReader::new(&bytes);
//! for &s in &[0u16, 2, 0, 3, 1] {
//!     assert_eq!(table.decode(&mut r)?, s);
//! }
//! # Ok(())
//! # }
//! ```

use crate::codebook::{CodeBook, DecodeSymbolError};
use cce_bitstream::BitReader;

/// Codes at most this long resolve with one table load.
const DEFAULT_ROOT_BITS: u8 = 11;

/// Marker for table slots whose code is longer than the root width.
const ESCAPE: u8 = u8::MAX;

/// One-level acceleration table over a [`CodeBook`].
#[derive(Debug, Clone)]
pub struct DecodeTable {
    root_bits: u8,
    /// Indexed by the next `root_bits` bits (left-justified); holds
    /// `(symbol, code_len)` or `len == ESCAPE` for over-long codes.
    entries: Vec<(u16, u8)>,
    /// Fallback canonical decoder for codes longer than `root_bits`.
    book: CodeBook,
}

impl CodeBook {
    /// Builds a one-level decode table (root width 11 bits, or the longest
    /// code if shorter).
    pub fn decode_table(&self) -> DecodeTable {
        self.decode_table_with_root(DEFAULT_ROOT_BITS)
    }

    /// Builds a decode table resolving codes of up to `root_bits` bits in
    /// one load.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= root_bits <= 15`.
    pub fn decode_table_with_root(&self, root_bits: u8) -> DecodeTable {
        assert!((1..=15).contains(&root_bits), "root_bits must be 1..=15");
        let root_bits = root_bits.min(self.max_code_len());
        let mut entries = vec![(0u16, ESCAPE); 1usize << root_bits];
        for symbol in 0..self.lengths().len() as u16 {
            let len = self.length(symbol);
            if len == 0 || len > root_bits {
                continue;
            }
            let code = self.code(symbol);
            // Fill every slot whose prefix is this codeword.
            let shift = root_bits - len;
            let base = (code << shift) as usize;
            for suffix in 0..1usize << shift {
                entries[base + suffix] = (symbol, len);
            }
        }
        DecodeTable { root_bits, entries, book: self.clone() }
    }
}

impl DecodeTable {
    /// The root width in bits.
    pub fn root_bits(&self) -> u8 {
        self.root_bits
    }

    /// Decodes one symbol, using a single table load for codes that fit
    /// the root width.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CodeBook::decode`].
    pub fn decode(&self, reader: &mut BitReader<'_>) -> Result<u16, DecodeSymbolError> {
        let available = reader.remaining_bits().min(usize::from(self.root_bits));
        if available == 0 {
            // Delegate so the error carries the right position.
            return self.book.decode(reader);
        }
        // Peek without consuming: clone the (cheap) reader cursor.
        let mut probe = reader.clone();
        let peeked = probe.read_bits(available as u32).expect("length checked");
        let index = (peeked as usize) << (usize::from(self.root_bits) - available);
        let (symbol, len) = self.entries[index];
        if len != ESCAPE && usize::from(len) <= available {
            reader.read_bits(u32::from(len)).expect("length checked");
            return Ok(symbol);
        }
        // Over-long code (or truncated stream): canonical walk.
        self.book.decode(reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cce_bitstream::BitWriter;

    fn round_trip_both(freqs: &[u64], symbols: &[u16]) {
        let book = CodeBook::from_frequencies(freqs, 15).unwrap();
        let table = book.decode_table();
        let mut w = BitWriter::new();
        for &s in symbols {
            book.encode(&mut w, s);
        }
        let bytes = w.into_bytes();
        let mut slow = BitReader::new(&bytes);
        let mut fast = BitReader::new(&bytes);
        for &s in symbols {
            assert_eq!(book.decode(&mut slow).unwrap(), s);
            assert_eq!(table.decode(&mut fast).unwrap(), s);
        }
        assert_eq!(slow.bit_position(), fast.bit_position());
    }

    #[test]
    fn matches_canonical_decoder_on_mixed_codes() {
        // Fibonacci weights force codes both shorter and longer than 11.
        let freqs: Vec<u64> = (0..24)
            .scan((1u64, 1u64), |s, _| {
                let v = s.0;
                *s = (s.1, s.0 + s.1);
                Some(v)
            })
            .collect();
        let symbols: Vec<u16> = (0..24).rev().chain(0..24).collect();
        round_trip_both(&freqs, &symbols);
    }

    #[test]
    fn single_symbol_code() {
        round_trip_both(&[0, 5], &[1, 1, 1]);
    }

    #[test]
    fn handles_stream_shorter_than_root() {
        // One 1-bit code in the stream: available < root_bits must still
        // resolve via the partial lookup.
        let book = CodeBook::from_frequencies(&[9, 1, 1, 1], 15).unwrap();
        let table = book.decode_table();
        let mut w = BitWriter::new();
        book.encode(&mut w, 0); // 1-bit code
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(table.decode(&mut r).unwrap(), 0);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let book = CodeBook::from_frequencies(&[1, 1, 1, 1], 15).unwrap();
        let table = book.decode_table();
        let mut r = BitReader::new(&[]);
        assert!(table.decode(&mut r).is_err());
    }

    #[test]
    fn tiny_root_still_decodes_via_fallback() {
        let freqs: Vec<u64> = (1..=40).collect();
        let book = CodeBook::from_frequencies(&freqs, 15).unwrap();
        let table = book.decode_table_with_root(2);
        let symbols: Vec<u16> = (0..40).collect();
        let mut w = BitWriter::new();
        for &s in &symbols {
            book.encode(&mut w, s);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            assert_eq!(table.decode(&mut r).unwrap(), s);
        }
    }
}
