//! Canonical, length-limited Huffman coding.
//!
//! Two consumers in this workspace need Huffman codes:
//!
//! * **SADC** (Lekatsas & Wolf, DAC 1998, §4) Huffman-codes its dictionary
//!   index, register and immediate streams as a final pass.
//! * The **byte-based Huffman baseline** of Kozuch & Wolfe (Fig. 9 of the
//!   paper) compresses raw program bytes per cache block with one
//!   program-wide code table; [`block`] implements it.
//!
//! [`CodeBook`] builds optimal length-limited codes with the package-merge
//! algorithm and assigns *canonical* codewords, so a decoder only needs the
//! code lengths — the form a hardware table decoder would store.
//!
//! # Examples
//!
//! ```
//! use cce_huffman::CodeBook;
//! use cce_bitstream::{BitReader, BitWriter};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let freqs = [10u64, 1, 1, 4];
//! let book = CodeBook::from_frequencies(&freqs, 15)?;
//!
//! let mut w = BitWriter::new();
//! for &sym in &[0u16, 3, 0, 1] {
//!     book.encode(&mut w, sym);
//! }
//! let bytes = w.into_bytes();
//!
//! let mut r = BitReader::new(&bytes);
//! for &sym in &[0u16, 3, 0, 1] {
//!     assert_eq!(book.decode(&mut r)?, sym);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
mod codebook;
mod decode_table;
pub mod obs;

pub use codebook::{BuildCodeBookError, CodeBook, DecodeSymbolError};
pub use decode_table::DecodeTable;
