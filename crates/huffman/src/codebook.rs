//! Canonical length-limited Huffman code construction.

use cce_bitstream::{BitReader, BitWriter, EndOfStreamError};
use std::error::Error;
use std::fmt;

/// Errors from [`CodeBook::from_frequencies`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildCodeBookError {
    /// No symbol had a non-zero frequency, so there is nothing to code.
    NoSymbols,
    /// The requested maximum length cannot host the alphabet
    /// (`2^max_len` is smaller than the number of used symbols).
    LengthLimitTooSmall {
        /// Number of symbols with non-zero frequency.
        used_symbols: usize,
        /// The limit that was requested.
        max_len: u8,
    },
    /// A transmitted code length exceeds the 32-bit codeword register.
    LengthTooLong {
        /// The offending length.
        length: u8,
    },
}

impl fmt::Display for BuildCodeBookError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoSymbols => write!(f, "no symbol has a non-zero frequency"),
            Self::LengthLimitTooSmall { used_symbols, max_len } => write!(
                f,
                "{used_symbols} symbols cannot be coded with codes of at most {max_len} bits"
            ),
            Self::LengthTooLong { length } => {
                write!(f, "code length {length} exceeds the 32-bit codeword limit")
            }
        }
    }
}

impl Error for BuildCodeBookError {}

/// Errors from [`CodeBook::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeSymbolError {
    /// The bitstream ended inside a codeword.
    EndOfStream(EndOfStreamError),
    /// The read bits do not prefix any assigned codeword (corrupt stream or
    /// wrong code table).
    InvalidCodeword,
}

impl fmt::Display for DecodeSymbolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EndOfStream(e) => write!(f, "codeword truncated: {e}"),
            Self::InvalidCodeword => write!(f, "bits do not match any codeword"),
        }
    }
}

impl Error for DecodeSymbolError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::EndOfStream(e) => Some(e),
            Self::InvalidCodeword => None,
        }
    }
}

impl From<EndOfStreamError> for DecodeSymbolError {
    fn from(e: EndOfStreamError) -> Self {
        Self::EndOfStream(e)
    }
}

impl From<BuildCodeBookError> for cce_codec::CodecError {
    fn from(e: BuildCodeBookError) -> Self {
        Self::train("huffman", e)
    }
}

impl From<DecodeSymbolError> for cce_codec::CodecError {
    fn from(e: DecodeSymbolError) -> Self {
        Self::corrupt("huffman", e)
    }
}

/// A canonical, length-limited Huffman code over symbols `0..n`.
///
/// Construction uses package-merge, which yields *optimal* expected length
/// among all codes with the given length limit — matching what a real
/// table-driven hardware decoder (bounded codeword register) can decode.
///
/// Symbols with zero frequency receive no codeword; encoding one panics,
/// decoding can never produce one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeBook {
    /// Code length per symbol; 0 = symbol unused.
    lengths: Vec<u8>,
    /// Canonical codeword per symbol (valid where `lengths > 0`).
    codes: Vec<u32>,
    /// For each length L (index 1..=max): the first canonical code of that
    /// length and the index into `sorted_symbols` where that length starts.
    first_code: Vec<u32>,
    first_index: Vec<u32>,
    /// Symbols sorted by (length, symbol) — canonical order.
    sorted_symbols: Vec<u16>,
    max_len: u8,
}

impl CodeBook {
    /// Builds an optimal code for `frequencies` with codewords of at most
    /// `max_len` bits.
    ///
    /// # Errors
    ///
    /// * [`BuildCodeBookError::NoSymbols`] if every frequency is zero.
    /// * [`BuildCodeBookError::LengthLimitTooSmall`] if `2^max_len` is less
    ///   than the number of used symbols.
    ///
    /// # Panics
    ///
    /// Panics if `frequencies.len() > u16::MAX as usize + 1` or
    /// `max_len == 0` or `max_len > 32`.
    pub fn from_frequencies(frequencies: &[u64], max_len: u8) -> Result<Self, BuildCodeBookError> {
        assert!(frequencies.len() <= u16::MAX as usize + 1, "alphabet too large");
        assert!(max_len > 0 && max_len <= 32, "max_len must be in 1..=32");
        let used: Vec<u16> =
            (0..frequencies.len() as u16).filter(|&s| frequencies[usize::from(s)] > 0).collect();
        if used.is_empty() {
            return Err(BuildCodeBookError::NoSymbols);
        }
        if used.len() > 1usize << max_len.min(31) {
            return Err(BuildCodeBookError::LengthLimitTooSmall {
                used_symbols: used.len(),
                max_len,
            });
        }

        let mut lengths = vec![0u8; frequencies.len()];
        if used.len() == 1 {
            // A lone symbol still needs one bit so the stream is non-empty
            // and self-delimiting.
            lengths[usize::from(used[0])] = 1;
        } else {
            package_merge(frequencies, &used, max_len, &mut lengths);
        }
        Ok(Self::from_lengths_unchecked(lengths))
    }

    /// Rebuilds a code book from transmitted code lengths (0 = unused).
    ///
    /// This is how a decompressor reconstructs the table: canonical codes
    /// are fully determined by their lengths.
    ///
    /// # Errors
    ///
    /// Returns an error if the lengths do not describe a valid prefix code
    /// (Kraft sum ≠ 1 for multi-symbol alphabets, except the 1-symbol case).
    pub fn from_lengths(lengths: Vec<u8>) -> Result<Self, BuildCodeBookError> {
        let used: Vec<&u8> = lengths.iter().filter(|&&l| l > 0).collect();
        if used.is_empty() {
            return Err(BuildCodeBookError::NoSymbols);
        }
        // Lengths are input-derived when deserializing a codec model; a
        // length past the 32-bit codeword register would overflow the
        // canonical-code shifts below, so reject it up front.
        if let Some(&&length) = used.iter().find(|&&&l| l > 32) {
            return Err(BuildCodeBookError::LengthTooLong { length });
        }
        let max_len = *used.iter().copied().max().expect("non-empty");
        if used.len() > 1 {
            // Kraft–McMillan check: sum 2^-len must be exactly 1 for a
            // complete canonical code (we only emit complete codes).
            let kraft: u64 = used.iter().map(|&&l| 1u64 << (max_len - l)).sum();
            if kraft != 1u64 << max_len {
                return Err(BuildCodeBookError::LengthLimitTooSmall {
                    used_symbols: used.len(),
                    max_len,
                });
            }
        }
        Ok(Self::from_lengths_unchecked(lengths))
    }

    fn from_lengths_unchecked(lengths: Vec<u8>) -> Self {
        let max_len = lengths.iter().copied().max().expect("non-empty lengths");
        let mut sorted_symbols: Vec<u16> =
            (0..lengths.len() as u16).filter(|&s| lengths[usize::from(s)] > 0).collect();
        sorted_symbols.sort_by_key(|&s| (lengths[usize::from(s)], s));

        let mut codes = vec![0u32; lengths.len()];
        let mut first_code = vec![0u32; usize::from(max_len) + 1];
        let mut first_index = vec![0u32; usize::from(max_len) + 1];
        let mut code = 0u32;
        let mut prev_len = 0u8;
        for (i, &sym) in sorted_symbols.iter().enumerate() {
            let len = lengths[usize::from(sym)];
            // Widen through u64: a degenerate single-symbol code of length
            // 32 shifts by the full register width, which u32 disallows.
            code = (u64::from(code) << (len - prev_len)) as u32;
            if len != prev_len {
                for l in prev_len + 1..=len {
                    first_code[usize::from(l)] = code >> (len - l).min(31);
                    first_index[usize::from(l)] = i as u32;
                }
                // first_code for the new length is exactly `code`.
                first_code[usize::from(len)] = code;
                first_index[usize::from(len)] = i as u32;
            }
            codes[usize::from(sym)] = code;
            code += 1;
            prev_len = len;
        }
        // Lengths above the longest assigned one hold no codewords; their
        // start index is the end of the symbol list so counts come out zero.
        for l in prev_len + 1..=max_len {
            first_index[usize::from(l)] = sorted_symbols.len() as u32;
        }
        Self { lengths, codes, first_code, first_index, sorted_symbols, max_len }
    }

    /// The canonical codeword assigned to `symbol` (crate-internal;
    /// meaningless when the symbol's length is zero).
    pub(crate) fn code(&self, symbol: u16) -> u32 {
        self.codes[usize::from(symbol)]
    }

    /// The code length of `symbol` in bits (0 if the symbol is unused).
    pub fn length(&self, symbol: u16) -> u8 {
        self.lengths.get(usize::from(symbol)).copied().unwrap_or(0)
    }

    /// The code lengths table — what a container serializes.
    pub fn lengths(&self) -> &[u8] {
        &self.lengths
    }

    /// The longest assigned codeword, in bits.
    pub fn max_code_len(&self) -> u8 {
        self.max_len
    }

    /// Number of symbols with a codeword.
    pub fn used_symbols(&self) -> usize {
        self.sorted_symbols.len()
    }

    /// Expected cost in bits of coding a source with `frequencies` using
    /// this book (frequencies indexed like the constructor's).
    pub fn total_bits(&self, frequencies: &[u64]) -> u64 {
        frequencies.iter().zip(&self.lengths).map(|(&f, &l)| f * u64::from(l)).sum()
    }

    /// Appends `symbol`'s codeword to `writer`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` has no codeword (zero training frequency).
    pub fn encode(&self, writer: &mut BitWriter, symbol: u16) {
        let len = self.lengths[usize::from(symbol)];
        assert!(len > 0, "symbol {symbol} has no codeword");
        writer.write_bits(self.codes[usize::from(symbol)], u32::from(len));
    }

    /// Decodes one symbol from `reader`.
    ///
    /// # Errors
    ///
    /// * [`DecodeSymbolError::EndOfStream`] if the stream ends mid-codeword.
    /// * [`DecodeSymbolError::InvalidCodeword`] if no codeword matches
    ///   (possible only for the degenerate one-symbol code reading a `1` bit).
    pub fn decode(&self, reader: &mut BitReader<'_>) -> Result<u16, DecodeSymbolError> {
        let mut code = 0u32;
        for len in 1..=self.max_len {
            code = code << 1 | u32::from(reader.read_bit()?);
            let li = usize::from(len);
            // Count of codewords at this length:
            let next_index = if li == usize::from(self.max_len) {
                self.sorted_symbols.len() as u32
            } else {
                self.first_index[li + 1]
            };
            let count = next_index - self.first_index[li];
            if count > 0 && code >= self.first_code[li] && code - self.first_code[li] < count {
                let idx = self.first_index[li] + (code - self.first_code[li]);
                return Ok(self.sorted_symbols[idx as usize]);
            }
        }
        Err(DecodeSymbolError::InvalidCodeword)
    }
}

/// Package-merge: optimal length-limited code lengths.
///
/// Produces, for the `used` symbols of `frequencies`, lengths of at most
/// `max_len` minimizing the weighted sum, writing them into `lengths`.
fn package_merge(frequencies: &[u64], used: &[u16], max_len: u8, lengths: &mut [u8]) {
    #[derive(Clone)]
    struct Package {
        weight: u64,
        /// Leaf symbols contained (with multiplicity across merges).
        symbols: Vec<u16>,
    }

    let mut leaves: Vec<Package> = used
        .iter()
        .map(|&s| Package { weight: frequencies[usize::from(s)], symbols: vec![s] })
        .collect();
    leaves.sort_by_key(|p| p.weight);

    // Level 0 (deepest): just the leaves.
    let mut prev: Vec<Package> = leaves.clone();
    for _ in 1..max_len {
        // Pair up adjacent packages from the previous level...
        let mut merged: Vec<Package> = prev
            .chunks_exact(2)
            .map(|pair| Package {
                weight: pair[0].weight + pair[1].weight,
                symbols: {
                    let mut v = pair[0].symbols.clone();
                    v.extend_from_slice(&pair[1].symbols);
                    v
                },
            })
            .collect();
        // ...and merge-sort with a fresh copy of the leaves.
        merged.extend(leaves.iter().cloned());
        merged.sort_by_key(|p| p.weight);
        prev = merged;
    }

    // Take the 2(n-1) cheapest packages from the final level; each
    // appearance of a symbol adds one bit to its code length.
    let take = 2 * (used.len() - 1);
    for package in prev.iter().take(take) {
        for &s in &package.symbols {
            lengths[usize::from(s)] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(freqs: &[u64], symbols: &[u16], max_len: u8) {
        let book = CodeBook::from_frequencies(freqs, max_len).unwrap();
        let mut w = BitWriter::new();
        for &s in symbols {
            book.encode(&mut w, s);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &s in symbols {
            assert_eq!(book.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn empty_frequencies_error() {
        assert_eq!(
            CodeBook::from_frequencies(&[0, 0, 0], 8).unwrap_err(),
            BuildCodeBookError::NoSymbols
        );
        assert_eq!(CodeBook::from_frequencies(&[], 8).unwrap_err(), BuildCodeBookError::NoSymbols);
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let book = CodeBook::from_frequencies(&[0, 7, 0], 8).unwrap();
        assert_eq!(book.length(1), 1);
        round_trip(&[0, 7, 0], &[1, 1, 1], 8);
    }

    #[test]
    fn two_equal_symbols_get_one_bit_each() {
        let book = CodeBook::from_frequencies(&[5, 5], 8).unwrap();
        assert_eq!(book.length(0), 1);
        assert_eq!(book.length(1), 1);
    }

    #[test]
    fn classic_example_lengths() {
        // freqs 1,1,2,4,8: optimal lengths 4,4,3,2,1 (unlimited).
        let book = CodeBook::from_frequencies(&[1, 1, 2, 4, 8], 16).unwrap();
        assert_eq!(book.lengths(), &[4, 4, 3, 2, 1]);
        assert_eq!(book.total_bits(&[1, 1, 2, 4, 8]), 4 + 4 + 6 + 8 + 8);
    }

    #[test]
    fn length_limit_is_respected_and_optimal() {
        // Fibonacci-ish weights force deep trees when unlimited.
        let freqs: Vec<u64> = vec![1, 1, 2, 3, 5, 8, 13, 21, 34, 55];
        let limited = CodeBook::from_frequencies(&freqs, 5).unwrap();
        assert!(limited.max_code_len() <= 5);
        let unlimited = CodeBook::from_frequencies(&freqs, 16).unwrap();
        assert!(unlimited.total_bits(&freqs) <= limited.total_bits(&freqs));
        // Kraft completeness.
        let kraft: f64 =
            limited.lengths().iter().filter(|&&l| l > 0).map(|&l| 0.5f64.powi(i32::from(l))).sum();
        assert!((kraft - 1.0).abs() < 1e-12);
    }

    #[test]
    fn limit_too_small_is_an_error() {
        let freqs = vec![1u64; 16];
        assert!(matches!(
            CodeBook::from_frequencies(&freqs, 3).unwrap_err(),
            BuildCodeBookError::LengthLimitTooSmall { used_symbols: 16, max_len: 3 }
        ));
        assert!(CodeBook::from_frequencies(&freqs, 4).is_ok());
    }

    #[test]
    fn canonical_codes_are_lexicographic() {
        let book = CodeBook::from_frequencies(&[8, 1, 1, 2, 4], 16).unwrap();
        // Shorter codes sort before longer; equal lengths by symbol index.
        let mut pairs: Vec<(u8, u32)> = (0..5)
            .map(|s| {
                (book.length(s), {
                    let mut w = BitWriter::new();
                    book.encode(&mut w, s);
                    let bits = w.bit_len() as u32;
                    let bytes = w.into_bytes();
                    let mut r = BitReader::new(&bytes);
                    r.read_bits(bits).unwrap() // the raw codeword
                })
            })
            .collect();
        pairs.sort();
        for window in pairs.windows(2) {
            let (l0, c0) = window[0];
            let (l1, c1) = window[1];
            // Left-justify both to max length and compare numerically.
            let m = book.max_code_len();
            assert!(c0 << (m - l0) < c1 << (m - l1) || (l0, c0) == (l1, c1));
        }
    }

    #[test]
    fn lengths_round_trip_through_from_lengths() {
        let freqs = [3u64, 0, 9, 2, 2, 7, 0, 1];
        let book = CodeBook::from_frequencies(&freqs, 15).unwrap();
        let rebuilt = CodeBook::from_lengths(book.lengths().to_vec()).unwrap();
        assert_eq!(&book, &rebuilt);
    }

    #[test]
    fn from_lengths_rejects_incomplete_codes() {
        // Lengths {1} for two symbols are fine; {2, 2} alone are incomplete.
        assert!(CodeBook::from_lengths(vec![2, 2, 0]).is_err());
        assert!(CodeBook::from_lengths(vec![1, 1]).is_ok());
        assert!(CodeBook::from_lengths(vec![1, 2, 2]).is_ok());
        assert!(CodeBook::from_lengths(vec![0, 0]).is_err());
    }

    #[test]
    fn from_lengths_rejects_lengths_past_the_register_width() {
        // A tampered serialized codebook can claim any length; 64 used to
        // overflow the canonical-code shifts (a panic), not return an error.
        assert_eq!(
            CodeBook::from_lengths(vec![64, 64]).unwrap_err(),
            BuildCodeBookError::LengthTooLong { length: 64 }
        );
        assert_eq!(
            CodeBook::from_lengths(vec![0, 255]).unwrap_err(),
            BuildCodeBookError::LengthTooLong { length: 255 }
        );
    }

    #[test]
    fn degenerate_full_width_single_symbol_does_not_panic() {
        // One symbol of length 32 shifts by the whole register width.
        let book = CodeBook::from_lengths(vec![32]).unwrap();
        assert_eq!(book.max_code_len(), 32);
        assert_eq!(book.length(0), 32);
    }

    #[test]
    fn decode_detects_truncation() {
        let book = CodeBook::from_frequencies(&[1, 1, 1, 1], 8).unwrap();
        let mut w = BitWriter::new();
        book.encode(&mut w, 3);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes[..0]);
        assert!(matches!(book.decode(&mut r), Err(DecodeSymbolError::EndOfStream(_))));
    }

    #[test]
    fn skewed_distribution_compresses() {
        let mut freqs = vec![1u64; 64];
        freqs[0] = 10_000;
        let book = CodeBook::from_frequencies(&freqs, 15).unwrap();
        assert_eq!(book.length(0), 1);
        let symbols: Vec<u16> = (0..1000).map(|i| if i % 20 == 0 { 5 } else { 0 }).collect();
        round_trip(&freqs, &symbols, 15);
    }

    #[test]
    fn large_alphabet_round_trips() {
        let freqs: Vec<u64> = (0..300u64).map(|i| i * i % 97 + 1).collect();
        let symbols: Vec<u16> = (0..300).collect();
        round_trip(&freqs, &symbols, 16);
    }
}
