//! Property tests: the accelerated decode table is observably identical
//! to the canonical bit-walk decoder, and both survive adversarial
//! frequency shapes.

use cce_bitstream::{BitReader, BitWriter};
use cce_huffman::CodeBook;
use cce_rng::prop::prelude::*;

fn frequency_vectors() -> impl Strategy<Value = Vec<u64>> {
    prop_oneof![
        // Arbitrary small alphabets.
        prop::collection::vec(0u64..1000, 2..64),
        // Heavy skew: one dominant symbol.
        prop::collection::vec(1u64..5, 2..64).prop_map(|mut v| {
            v[0] = 1_000_000;
            v
        }),
        // Exponential shape forces deep codes.
        (2usize..24).prop_map(|n| (0..n as u32).map(|i| 1u64 << i.min(50)).collect()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn table_decode_equals_canonical_decode(
        freqs in frequency_vectors(),
        picks in prop::collection::vec(any::<prop::sample::Index>(), 1..200),
    ) {
        let Ok(book) = CodeBook::from_frequencies(&freqs, 15) else {
            return Ok(()); // all-zero frequency vector
        };
        let table = book.decode_table();
        let used: Vec<u16> = (0..freqs.len() as u16).filter(|&s| book.length(s) > 0).collect();
        let symbols: Vec<u16> = picks.iter().map(|ix| used[ix.index(used.len())]).collect();

        let mut w = BitWriter::new();
        for &s in &symbols {
            book.encode(&mut w, s);
        }
        let bytes = w.into_bytes();

        let mut slow = BitReader::new(&bytes);
        let mut fast = BitReader::new(&bytes);
        for &s in &symbols {
            prop_assert_eq!(book.decode(&mut slow).unwrap(), s);
            prop_assert_eq!(table.decode(&mut fast).unwrap(), s);
            prop_assert_eq!(slow.bit_position(), fast.bit_position());
        }
    }

    #[test]
    fn decoders_never_panic_on_noise(
        freqs in frequency_vectors(),
        noise in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let Ok(book) = CodeBook::from_frequencies(&freqs, 15) else {
            return Ok(());
        };
        let table = book.decode_table();
        let mut slow = BitReader::new(&noise);
        let mut fast = BitReader::new(&noise);
        // Decode until either errors; results must agree step for step.
        loop {
            let a = book.decode(&mut slow);
            let b = table.decode(&mut fast);
            prop_assert_eq!(a.is_ok(), b.is_ok());
            match (a, b) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                _ => break,
            }
            prop_assert_eq!(slow.bit_position(), fast.bit_position());
        }
    }
}
